"""Algorithm 2: pipelined parallel out-of-core breadth-first search.

The communication-overlapping variant: while a rank is still expanding the
current fringe, it ships next-level fringe *chunks* to their owners as soon
as a per-destination buffer passes ``threshold`` (lines 16–19), and drains
any chunks that have already arrived between expansion batches (lines
24–27).  Because DataCutter sends are non-blocking, the transfer of early
chunks overlaps the remaining disk reads of the level; at the level end
only the stragglers are waited for.

Level-end protocol: leftover buffers are flushed, then an alltoall of
per-destination chunk counts tells every rank exactly how many data
messages to drain before the found/termination allreduce — preserving the
algorithm's level-synchronous semantics deterministically.
"""

from __future__ import annotations

import numpy as np

from ..graphdb.interface import GraphDB
from ..simcluster.cluster import RankContext
from ..util.errors import CorruptBlockError, DeviceFailedError
from ..util.longarray import LongArray
from .direction import (
    BOTTOM_UP,
    DirectionController,
    bottom_up_level,
    merge_level_stats,
)
from .failover import (
    FTState,
    failover_rounds,
    prune_known_dead_pending,
    route_to_replicas,
    try_expand,
)
from .oocbfs import BFSConfig, BFSRankResult, _merge_found
from .visited import VisitedLevels

__all__ = ["pipelined_bfs_program"]

TAG_FRINGE_CHUNK = 77


def pipelined_bfs_program(
    ctx: RankContext,
    db: GraphDB,
    cfg: BFSConfig,
    visited: VisitedLevels,
    threshold: int = 256,
    poll_batch: int = 64,
    owner_of=None,
):
    """Rank program (generator) implementing Algorithm 2.

    ``threshold`` is the pipelining chunk size of the pseudocode;
    ``poll_batch`` is how many fringe vertices are expanded between polls
    of the incoming message queue; ``owner_of`` as in Algorithm 1.
    """
    comm = ctx.comm
    size = comm.size
    rank = comm.rank
    if owner_of is None:
        owner_of = lambda vs: vs % size  # noqa: E731 - the paper's default map
    result = BFSRankResult()
    start_time = ctx.clock.now
    edges_before = db.stats.edges_scanned
    ft = FTState(cfg.ft, size) if cfg.ft is not None else None
    if ft is not None and rank in ft.cfg.known_dead:
        # This rank is on record as dead (e.g. from a rebalance pass):
        # don't bang on the device to rediscover it.
        ft.self_dead = True

    if cfg.source == cfg.dest:
        result.found_level = 0
        result.seconds = ctx.clock.now - start_time
        return result

    visited.mark(cfg.source, 0)
    fringe = np.array([cfg.source], dtype=np.int64)
    levcnt = 0
    next_fringe = LongArray()

    def absorb(vertices: np.ndarray, level: int) -> None:
        """Receiver-side filter (lines 25–27): keep the still-unvisited."""
        fresh = visited.unvisited(np.unique(vertices))
        visited.mark_many(fresh, level)
        next_fringe.extend(fresh)

    # The hybrid needs a vertex->owner map to know which unvisited vertices
    # to pull for; in broadcast (unknown-mapping) mode it stays off.
    dctl = (
        DirectionController(cfg.direction)
        if cfg.direction is not None and cfg.owner_known
        else None
    )

    while True:
        levcnt += 1
        if dctl is not None and dctl.decide(levcnt) == BOTTOM_UP:
            # A pull level has nothing to pipeline — the fringe travels as
            # one bitmap, not as chunks — so it bypasses the chunk protocol
            # entirely and runs the same shared bottom-up level as
            # Algorithm 1.  Rank-uniform: every rank takes this branch.
            result.directions.append(BOTTOM_UP)
            fringe, found_here = yield from bottom_up_level(
                ctx, db, cfg, visited, levcnt, fringe, owner_of, ft, cfg.direction, result
            )
            result.fringe_vertices += len(fringe)
            result.levels_expanded = levcnt
            repl = ft.cfg.replication if ft is not None else 1
            stored = db.stats.edges_stored if levcnt == 1 else 0
            found_any, total_new, fringe_degree, stored_total = yield from comm.allreduce(
                (found_here, len(fringe), int(db.degree_many(fringe).sum()), stored),
                merge_level_stats,
            )
            dctl.observe(total_new, fringe_degree, stored_total // max(1, repl))
            if found_any:
                result.found_level = levcnt
                break
            if total_new == 0 or levcnt >= cfg.max_levels:
                break
            continue
        if dctl is not None:
            result.directions.append(dctl.mode)
        buffers: list[LongArray] = [LongArray() for _ in range(size)]
        sent_chunks = [0] * size
        received_chunks = [0] * size
        found_here = False

        def flush(q: int) -> None:
            if q == rank:
                absorb(buffers[q].to_numpy(), levcnt)
            else:
                comm.send(q, buffers[q].to_numpy(), tag=TAG_FRINGE_CHUNK)
                sent_chunks[q] += 1
            buffers[q].clear()

        pending = np.empty(0, dtype=np.int64)
        if cfg.prefetch and (ft is None or not ft.self_dead):
            try:
                db.prefetch_fringe(fringe)
            except DeviceFailedError as e:
                if ft is None:
                    raise
                ft.self_dead = True
                if isinstance(e, CorruptBlockError):
                    ft.corrupt = True
                else:
                    ft.device_failed = True
        for batch_start in range(0, max(len(fringe), 1), poll_batch):
            batch = fringe[batch_start : batch_start + poll_batch]
            if ft is None:
                out = LongArray()
                db.expand_fringe(batch, out)
                neighbors = out.view()
            else:
                neighbors = try_expand(ctx, db, cfg, batch, ft)
                if neighbors is None:
                    # Device died (or timed out) mid-level: the unexpanded
                    # tail of the fringe goes to the failover rounds after
                    # the level-end settle.  Skipping the remaining batches
                    # (and their opportunistic drains) is safe — the settle
                    # protocol below still receives every in-flight chunk.
                    pending = fringe[batch_start:]
                    break
            if len(neighbors) and np.any(neighbors == cfg.dest):
                found_here = True
            candidates = np.unique(neighbors) if len(neighbors) else neighbors
            new = visited.unvisited(candidates)

            if cfg.owner_known:
                owners = owner_of(new)
                if ft is not None and ft.dead:
                    owners = route_to_replicas(owners, ft)
                    lost = owners == -1
                    if lost.any():
                        ft.dropped += int(lost.sum())
                        ft.partial = True
                        visited.mark_many(new[lost], levcnt)
                        new = new[~lost]
                        owners = owners[~lost]
                visited.mark_many(new[owners != rank], levcnt)
                # Group vertices by destination in one stable sort instead of
                # size passes of boolean masking; destinations are visited in
                # ascending rank order, matching the original loop's flush
                # order exactly.
                order = np.argsort(owners, kind="stable")
                grouped = new[order]
                dests, starts = np.unique(owners[order], return_index=True)
                bounds = np.append(starts, len(grouped))
                for j, q in enumerate(dests):
                    q = int(q)
                    buffers[q].extend(grouped[bounds[j] : bounds[j + 1]])
                    if len(buffers[q]) >= threshold:
                        flush(q)
            else:
                # Unknown mapping: every chunk goes to everyone (broadcast),
                # and is transferred to local storage as well (lines 20–22).
                if len(new):
                    for q in range(size):
                        buffers[q].extend(new)
                        if len(buffers[q]) >= threshold:
                            flush(q)

            # Drain any chunks that have already arrived (lines 24–27);
            # overlapping this with expansion is the algorithm's point.
            while True:
                msg = yield from comm.try_recv(tag=TAG_FRINGE_CHUNK)
                if msg is None:
                    break
                received_chunks[msg.source] += 1
                absorb(np.asarray(msg.payload, dtype=np.int64), levcnt)

        # Level end: flush leftovers, settle message counts, drain stragglers.
        for q in range(size):
            if len(buffers[q]):
                flush(q)
        expected = yield from comm.alltoall(sent_chunks)
        for q in range(size):
            need = (expected[q] if q != rank else 0) - received_chunks[q]
            for _ in range(need):
                msg = yield from comm.recv(source=q, tag=TAG_FRINGE_CHUNK)
                absorb(np.asarray(msg.payload, dtype=np.int64), levcnt)

        if ft is not None:
            if levcnt == 1 and len(pending):
                pending = prune_known_dead_pending(
                    pending, ft, rank, owner_of if cfg.owner_known else None
                )
            # Collective failover for any shard left unexpanded, then one
            # synchronous exchange to route the recovered neighbors — the
            # pipelined chunk protocol for this level has already settled,
            # so recovered discoveries need their own (always-run, usually
            # empty) exchange to keep the collective order rank-uniform.
            extra = yield from failover_rounds(
                ctx, db, cfg, ft, pending, owner_of if cfg.owner_known else None
            )
            if len(extra) and np.any(extra == cfg.dest):
                found_here = True
            fresh = visited.unvisited(np.unique(extra)) if len(extra) else extra
            if cfg.owner_known:
                routes = route_to_replicas(owner_of(fresh), ft)
                lost = routes == -1
                if lost.any():
                    ft.dropped += int(lost.sum())
                    ft.partial = True
                    visited.mark_many(fresh[lost], levcnt)
                    fresh = fresh[~lost]
                    routes = routes[~lost]
                visited.mark_many(fresh[routes != rank], levcnt)
                parts = [fresh[routes == q] for q in range(size)]
                recovered = yield from comm.alltoall(parts)
            else:
                recovered = yield from comm.allgather(fresh)
            for r in recovered:
                r = np.asarray(r, dtype=np.int64)
                if len(r):
                    absorb(r, levcnt)

        fringe = next_fringe.to_numpy()
        next_fringe.clear()
        result.fringe_vertices += len(fringe)
        result.levels_expanded = levcnt

        if dctl is None:
            found_any, total_new = yield from comm.allreduce(
                (found_here, len(fringe)), _merge_found
            )
        else:
            # Extended level-end allreduce (see Algorithm 1): the stored-edge
            # count seeds the controller's m_u on the first level only.
            repl = ft.cfg.replication if ft is not None else 1
            stored = db.stats.edges_stored if levcnt == 1 else 0
            found_any, total_new, fringe_degree, stored_total = yield from comm.allreduce(
                (found_here, len(fringe), int(db.degree_many(fringe).sum()), stored),
                merge_level_stats,
            )
            dctl.observe(total_new, fringe_degree, stored_total // max(1, repl))
        if found_any:
            result.found_level = levcnt
            break
        if total_new == 0 or levcnt >= cfg.max_levels:
            break

    result.edges_scanned = db.stats.edges_scanned - edges_before
    result.seconds = ctx.clock.now - start_time
    if ft is not None:
        result.failovers = ft.failovers
        result.dropped_vertices = ft.dropped
        result.device_failed = ft.device_failed
        result.corrupt = ft.corrupt
        result.partial = ft.partial
    return result
