"""Direction-optimizing BFS: the push/pull hybrid (Beamer et al., SC'12).

The paper's own Figure 5.6 crossover — StreamDB's full sequential scan
beating grDB's random-access expansion at low node counts — is the
signature that on scale-free graphs the mid-BFS fringe touches most of the
graph, where per-vertex adjacency requests are the wrong plan.  This module
adds the standard remedy on top of Algorithms 1 and 2:

* :class:`DirectionController` — one per rank, rank-uniform by
  construction: its inputs are only allreduced globals (fringe out-degree
  sum, new-fringe count, total stored edges), so every rank takes the same
  top-down/bottom-up decision at every level without extra communication.
  Top-down switches to bottom-up when ``edges_from_fringe > alpha *
  edges_to_unvisited`` and back when the fringe shrinks below
  ``n / beta`` (Beamer's hysteresis, alpha = 1/14, beta = 24).
* :func:`bottom_up_level` — one pull level: each rank builds the global
  fringe as a dense :class:`~repro.util.bitset.Bitset` by allgathering raw
  words (network cost n/8 bytes per post instead of 8 bytes per fringe
  vertex — the ndarray payload is charged by size like any other message),
  then scans its *local unvisited* vertices' adjacency sequentially via
  ``GraphDB.scan_adjacency(order="storage")``, claiming a vertex at its
  first fringe-parent hit and skipping the rest of its list.  Only examined
  entries pay ``edge_visit_seconds`` (early-exit accounting).

Failover composition: dead ranks still post their (empty) bitmap and claim
arrays, keeping every collective rank-uniform; when a device dies mid-scan
the level runs bounded claim-exchange rounds in which the first surviving
member of each replica chain re-scans the dead rank's responsibility set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.bitset import Bitset
from ..util.errors import CorruptBlockError, DeviceFailedError
from .failover import FTState, route_to_replicas

__all__ = [
    "BOTTOM_UP",
    "TOP_DOWN",
    "DirectionConfig",
    "DirectionController",
    "bottom_up_level",
    "merge_level_stats",
]

TOP_DOWN = "top-down"
BOTTOM_UP = "bottom-up"

#: Below this fraction of written adjacency blocks holding candidates, a
#: semi-EM store's selective scan beats piggybacking on a shared
#: whole-store sweep (the fallback-to-full-scan heuristic of DESIGN §11).
SELECTIVE_COVERAGE_MAX = 0.5

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class DirectionConfig:
    """Hybrid-search knobs carried on :class:`~repro.bfs.BFSConfig`.

    ``None`` in ``BFSConfig.direction`` disables the hybrid entirely: the
    drivers then run the original top-down algorithms with the original
    (two-element) level-end allreduce, byte-identical to the paper mode.
    """

    #: Global vertex-id space size (ids are ``[0, num_vertices)``); sizes
    #: the dense fringe bitmap and the ``n/beta`` switch-back threshold.
    num_vertices: int
    #: Switch top-down -> bottom-up when ``m_f > alpha * m_u`` (Beamer's
    #: ``m_f > m_u / alpha`` with alpha = 14, expressed as a factor).
    alpha: float = 1.0 / 14.0
    #: Switch bottom-up -> top-down when the fringe count drops below
    #: ``num_vertices / beta``.
    beta: float = 24.0
    #: Forced per-level schedule for tests/ablations: entry ``i`` is the
    #: direction of level ``i + 1``; levels past the end repeat the last
    #: entry.  ``("bottom-up",)`` forces pure bottom-up;
    #: ``("top-down",) * k + ("bottom-up",)`` switches at level ``k + 1``.
    schedule: tuple[str, ...] | None = None

    def __post_init__(self):
        if self.num_vertices <= 0:
            raise ValueError("num_vertices must be positive")
        if self.schedule is not None:
            for d in self.schedule:
                if d not in (TOP_DOWN, BOTTOM_UP):
                    raise ValueError(f"unknown direction {d!r} in schedule")


class DirectionController:
    """Per-level push/pull decision from allreduced globals only.

    Every rank constructs one from the same :class:`DirectionConfig` and
    feeds it the same allreduced level-end statistics, so the decision
    sequence is identical on all ranks with zero extra messages.
    """

    def __init__(self, cfg: DirectionConfig):
        self.cfg = cfg
        self.mode = TOP_DOWN
        #: Directed adjacency entries still reachable from unvisited
        #: vertices (``m_u``); unknown until the first level-end allreduce
        #: reports the global stored-edge count.
        self._m_u: int | None = None
        #: Out-degree sum of the current fringe (``m_f``).
        self._m_f = 0
        #: Current fringe vertex count (``n_f``); bootstrap fringe is {s}.
        self._n_f = 1
        #: Directions chosen so far, one per level (telemetry).
        self.history: list[str] = []

    def peek(self, level: int) -> str:
        """Direction :meth:`decide` *would* pick for ``level`` — no state change.

        The concurrent-query multiplexer calls this between levels to
        predict which in-flight queries are about to run a bottom-up scan
        (so it can arm a shared sweep); the prediction is exact because
        ``decide`` commits the same computation.
        """
        s = self.cfg.schedule
        if s is not None:
            return s[min(level - 1, len(s) - 1)]
        if self._m_u is None:
            # Bootstrap: the {s} fringe has been allreduced by no one yet.
            return TOP_DOWN
        if self.mode == TOP_DOWN:
            return BOTTOM_UP if self._m_f > self.cfg.alpha * self._m_u else TOP_DOWN
        return TOP_DOWN if self._n_f * self.cfg.beta < self.cfg.num_vertices else BOTTOM_UP

    def decide(self, level: int) -> str:
        """Direction for BFS level ``level`` (1-based)."""
        mode = self.peek(level)
        self.mode = mode
        self.history.append(mode)
        return mode

    def observe(self, total_new: int, fringe_degree: int, edges_stored: int = 0) -> None:
        """Fold one level-end allreduce into the global picture.

        ``fringe_degree`` is the out-degree sum of the *new* fringe (each
        vertex counted once — fringes are owner-partitioned);
        ``edges_stored`` seeds ``m_u`` on the first call (global directed
        adjacency entries, already divided by the replication factor).
        """
        if self._m_u is None:
            self._m_u = int(edges_stored)
        self._m_u = max(0, self._m_u - int(fringe_degree))
        self._m_f = int(fringe_degree)
        self._n_f = int(total_new)


def merge_level_stats(a, b):
    """Allreduce merge for the extended level-end 4-tuple.

    ``(found, new fringe count, new fringe out-degree sum, stored edges)``
    — element 0 ORs, the rest sum.  The last element is only populated on
    the first level (it seeds the controller's ``m_u``).
    """
    return (a[0] or b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3])


def _adjacency_source(db, candidates):
    """Iterator of ``(vertex, neighbors)`` for the bottom-up claim scan.

    The historical plan is ``db.scan_adjacency(candidates)``.  When the
    concurrent multiplexer armed a shared bottom-up sweep on this rank's
    :class:`~repro.services.sharedscan.ScanBoard`, the first consumer
    materializes ONE whole-store storage-order pass into a ``{v:
    neighbors}`` map and publishes it (keyed by the stored-edge count);
    later consumers serve their candidate sets from the map with zero
    device work.  Per-vertex neighbor arrays are identical either way
    (``scan_adjacency`` yields a vertex's full list exactly once), and the
    claim loop's examined/skipped accounting is per-vertex, so answers are
    bit-identical to the unshared plan.

    Semi-EM refinement: when the store keeps a block directory and the
    candidate set touches only a sparse fraction of written blocks
    (GraphMP-style selective scheduling), materializing the WHOLE store
    for the shared map would read mostly blocks no one needs — the
    candidate-restricted selective scan is cheaper even without sharing,
    so it is preferred and the board is left unarmed for this consumer.
    """
    board = getattr(db, "scan_board", None)
    if board is None or not board.armed("bottom-up"):
        return db.scan_adjacency(candidates, order="storage")
    coverage = db.frontier_block_coverage(candidates)
    if coverage is not None and coverage < SELECTIVE_COVERAGE_MAX:
        return db.scan_adjacency(candidates, order="storage")
    # The store-size token invalidates the shared map across ingests.  The
    # map holds the BASE store only, so in streaming drains queries pinned
    # to different admission snapshots still share the one device pass;
    # each consumer merges its own overlay view on top from RAM below,
    # base-first per vertex — the same arrays the unshared plan yields.
    token = db.stats.edges_stored
    adj = board.lookup("bottom-up", token)
    if adj is None:
        adj = {v: neighbors for v, neighbors in db._scan_adjacency(None, order="storage")}
        board.publish("bottom-up", token, adj)
    wanted = np.unique(np.asarray(candidates, dtype=np.int64))
    view = db._overlay_view()
    if view is None:
        return ((int(v), adj[int(v)]) for v in wanted if int(v) in adj)

    def merged():
        for w in wanted:
            v = int(w)
            base = adj.get(v)
            extra = view.adjacency(v)
            if base is None:
                if len(extra):
                    yield v, extra
            elif len(extra):
                yield v, np.concatenate([base, extra])
            else:
                yield v, base

    return merged()


def _scan_claims(ctx, db, bm: Bitset, candidates, dest: int, ft: FTState | None):
    """Sequentially scan ``candidates``, claiming each at its first hit.

    Returns ``(claims, examined, skipped, ok)``; ``ok`` is False when the
    device died (or the attempt blew the failover timeout) mid-scan, in
    which case the partial claims are discarded by the caller.  Examined
    entries are charged ``edge_visit_seconds`` and counted in
    ``stats.edges_scanned`` either way — the work happened.
    """
    claims: list[int] = []
    examined = 0
    skipped = 0
    start = ctx.clock.now
    ok = True
    try:
        for v, neighbors in _adjacency_source(db, candidates):
            hits = np.flatnonzero(bm.get_many(neighbors))
            if len(hits):
                first = int(hits[0])
                examined += first + 1
                skipped += len(neighbors) - first - 1
                claims.append(v)
            else:
                examined += len(neighbors)
    except DeviceFailedError as e:
        if ft is None:
            raise
        ft.self_dead = True
        if isinstance(e, CorruptBlockError):
            ft.corrupt = True
        else:
            ft.device_failed = True
        ok = False
    ctx.clock.advance(examined * db.cpu.edge_visit_seconds)
    db.stats.edges_scanned += examined
    timeout = ft.cfg.attempt_timeout if ft is not None else None
    if ok and timeout is not None and ctx.clock.now - start > timeout:
        ft.self_dead = True
        ft.timed_out = True
        ok = False
    return np.array(claims, dtype=np.int64), examined, skipped, ok


def _responsibility(unvisited_locals: np.ndarray, rank: int, owner_of, ft: FTState | None):
    """Unvisited local vertices this rank must scan for.

    Healthy: the vertices it primarily owns.  Under failover: those whose
    replica chain it is the first surviving member of — so a dead rank's
    responsibility set deterministically moves to its replicas.
    """
    if not len(unvisited_locals):
        return unvisited_locals
    owners = np.asarray(owner_of(unvisited_locals), dtype=np.int64)
    if ft is not None and ft.dead:
        routes = route_to_replicas(owners, ft)
        return unvisited_locals[routes == rank]
    return unvisited_locals[owners == rank]


def bottom_up_level(ctx, db, cfg, visited, levcnt, fringe, owner_of, ft, dircfg, result):
    """One bottom-up (pull) BFS level; returns ``(new fringe, found_here)``.

    Must be entered by every rank at the same level (guaranteed by the
    rank-uniform controller).  The returned fringe is owner-partitioned —
    exactly the shape the next top-down level (or the next bitmap build)
    expects, so the two modes compose freely.
    """
    comm = ctx.comm
    rank = comm.rank

    # 1. Global fringe bitmap: every rank (dead ones included — the
    # collective must stay rank-uniform) posts its local fringe as raw
    # words; n/8 bytes on the wire per post, OR-merged zero-copy.
    bm = Bitset(dircfg.num_vertices)
    if len(fringe):
        bm.set_many(fringe)
    for words in (yield from comm.allgather(bm.words)):
        bm.or_words(np.asarray(words, dtype=np.uint64))

    if ft is None:
        # 2a. Healthy path: scan my unvisited owned vertices; claims are
        # owner-local, so no claim exchange is needed at all — peers learn
        # the new fringe from the next level's bitmap/alltoall as usual.
        candidates = _responsibility(
            visited.unvisited_local(db.local_vertices), rank, owner_of, None
        )
        claims, examined, skipped, _ = _scan_claims(ctx, db, bm, candidates, cfg.dest, None)
        visited.mark_many(claims, levcnt)
        result.edges_examined += examined
        result.edges_skipped += skipped
        found_here = bool(len(claims)) and bool(np.any(claims == cfg.dest))
        return claims, found_here

    # 2b. Failover path: bounded claim-exchange rounds.  Each round every
    # rank scans its (possibly re-assigned) responsibility set and posts
    # ``(self_dead, claims)``; a death announced in a round hands its
    # unscanned set to the next surviving chain members in the next round.
    all_claims: list[np.ndarray] = []
    scanned = _EMPTY
    extra_rounds = 0
    while True:
        my_claims = _EMPTY
        todo = _EMPTY
        if not ft.self_dead:
            try:
                # Enumerating local vertices may itself touch the device
                # (StreamDB replays its log; BerkeleyDB walks the leaves).
                candidates = _responsibility(
                    visited.unvisited_local(db.local_vertices), rank, owner_of, ft
                )
                todo = np.setdiff1d(candidates, scanned)
            except DeviceFailedError as e:
                ft.self_dead = True
                if isinstance(e, CorruptBlockError):
                    ft.corrupt = True
                else:
                    ft.device_failed = True
        if not ft.self_dead:
            if len(todo):
                if extra_rounds:
                    ft.failovers += 1  # picked up a dead peer's shard
                claims, examined, skipped, ok = _scan_claims(
                    ctx, db, bm, todo, cfg.dest, ft
                )
                result.edges_examined += examined
                result.edges_skipped += skipped
                if ok:
                    my_claims = claims
                    scanned = np.union1d(scanned, todo)
        prev_dead = set(ft.dead)
        posts = yield from comm.allgather((ft.self_dead, my_claims))
        for q, (is_dead, _) in enumerate(posts):
            if is_dead:
                ft.dead.add(q)
        merged = [np.asarray(c, dtype=np.int64) for _, c in posts if len(c)]
        if merged:
            round_claims = np.unique(np.concatenate(merged))
            # Every rank marks every claim: replica holders must see the
            # vertex as visited or they would re-claim it after a later
            # failover re-assignment.
            visited.mark_many(round_claims, levcnt)
            all_claims.append(round_claims)
        if not (ft.dead - prev_dead):
            break
        if extra_rounds >= ft.cfg.max_retries:
            ft.partial = True  # responsibility of the newly dead unserved
            break
        extra_rounds += 1

    claims = np.unique(np.concatenate(all_claims)) if all_claims else _EMPTY
    found_here = bool(len(claims)) and bool(np.any(claims == cfg.dest))
    if not len(claims):
        return claims, found_here
    # 3. The next-level fringe shard of each claim is its first surviving
    # holder under the *final* dead set (its claimer may have died right
    # after posting).  A claim whose whole chain died is dropped — counted
    # once, on its primary owner.
    owners = np.asarray(owner_of(claims), dtype=np.int64)
    routes = route_to_replicas(owners, ft)
    lost = routes == -1
    if lost.any():
        ft.dropped += int((lost & (owners == rank)).sum())
        ft.partial = True
    return claims[routes == rank], found_here
