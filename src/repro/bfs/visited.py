"""Visited/level structures for BFS.

Chapter 5 fixes the visited data structure (in-memory) for most runs "to
characterize the operation of the actual graph storage", and ablates an
external-memory visited structure for the Syn-2B runs (Fig. 5.8).  Both
wrap the metadata stores with BFS-level semantics: ``UNSET`` plays the role
of ``level = infinity``.
"""

from __future__ import annotations

import numpy as np

from ..graphdb.metadata import (
    ExternalMetadata,
    InMemoryMetadata,
    MetadataStore,
    PinnedMetadata,
    UNSET,
)
from ..simcluster.disk import BlockDevice

__all__ = [
    "VisitedLevels",
    "InMemoryVisited",
    "ExternalVisited",
    "PinnedVisited",
    "INFINITY",
]

#: "level[v] = infinity" sentinel.
INFINITY = UNSET


class VisitedLevels:
    """BFS level map over a metadata store."""

    def __init__(self, store: MetadataStore):
        self.store = store
        # Monotonically shrinking cache for unvisited_local(): visited
        # vertices never become unvisited again within one BFS, so each
        # bottom-up level only needs to re-filter the previous remainder.
        self._unvisited_cache: np.ndarray | None = None

    def level(self, vertex: int) -> int:
        return self.store.get(vertex)

    def is_visited(self, vertex: int) -> bool:
        return self.store.get(vertex) != INFINITY

    def mark(self, vertex: int, level: int) -> None:
        self.store.set(vertex, level)

    def mark_many(self, vertices, level: int) -> None:
        self.store.set_many(np.asarray(vertices, dtype=np.int64), int(level))

    def unvisited(self, vertices) -> np.ndarray:
        """Subset of ``vertices`` with level still at infinity."""
        vs = np.asarray(vertices, dtype=np.int64)
        if len(vs) == 0:
            return vs
        levels = self.store.get_many(vs)
        return vs[levels == INFINITY]

    def unvisited_local(self, local_vertices) -> np.ndarray:
        """Unvisited subset of this rank's vertices, for bottom-up scans.

        ``local_vertices`` is a callable returning the full local vertex
        array; it is invoked once, on the first bottom-up level of a query.
        Because visited levels only ever move from infinity to a value, the
        result shrinks monotonically — each call re-filters the previous
        remainder instead of materializing levels for the whole local id
        space again.
        """
        if self._unvisited_cache is None:
            base = np.asarray(local_vertices(), dtype=np.int64)
        else:
            base = self._unvisited_cache
        self._unvisited_cache = self.unvisited(base)
        return self._unvisited_cache


class InMemoryVisited(VisitedLevels):
    """Hash-map visited levels — the fixed structure of ch. 5's methodology."""

    def __init__(self):
        super().__init__(InMemoryMetadata())


class ExternalVisited(VisitedLevels):
    """Visited levels paged to disk — the Fig. 5.8 configuration.

    The default cache holds only a few pages (32 KB), so level lookups of a
    scale-free fringe — which scatters across the whole id range — pay
    steady paging costs, the measured effect of the ablation.
    """

    def __init__(self, device: BlockDevice, cache_pages: int = 8):
        super().__init__(ExternalMetadata(device, cache_pages=cache_pages))

    def flush(self) -> None:
        self.store.flush()


class PinnedVisited(VisitedLevels):
    """Visited levels in a resident dense array — semi-EM's layer 1.

    Replaces :class:`ExternalVisited` when ``semi_external=True``: the
    level array lives in RAM for the whole query (charged to the semi-EM
    budget at ``4 * num_vertices`` bytes per in-flight query), so the
    scale-free fringe's scattered level checks cost no device pages at
    all.  Levels are identical to the external structure's — only the
    medium differs.
    """

    def __init__(self, num_vertices: int):
        super().__init__(PinnedMetadata(num_vertices))

    @property
    def resident_bytes(self) -> int:
        return self.store.resident_bytes

    def flush(self) -> None:
        """Nothing to page out — kept for ExternalVisited API parity."""
