"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   write a scale-free workload to an edge file (ascii/binary)
``stats``      Table 5.1-style statistics for an edge file
``search``     ingest an edge file into a simulated deployment and run
               relationship queries
``experiment`` regenerate one of the paper's tables/figures by id
``list``       list available experiments and workloads
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from . import experiments
from .framework import MSSG, MSSGConfig
from .simcluster import DiskFault, FaultPlan
from .graphgen import (
    graph_stats,
    preferential_attachment,
    pubmed_like,
    read_ascii_edges,
    read_binary_edges,
    rmat_edges,
    write_ascii_edges,
    write_binary_edges,
)

__all__ = ["main"]

_EXPERIMENTS = {
    "table5.1": experiments.table_5_1,
    "fig5.1": experiments.fig_5_1,
    "fig5.2": experiments.fig_5_2,
    "fig5.3": experiments.fig_5_3,
    "fig5.4": experiments.fig_5_4,
    "fig5.5": experiments.fig_5_5,
    "fig5.6": experiments.fig_5_6,
    "fig5.7": experiments.fig_5_7,
    "fig5.8": experiments.fig_5_8,
    "fig5.9": experiments.fig_5_9,
}

_GENERATORS = ("pubmed", "ba", "rmat")


def _read_edges(path: str) -> np.ndarray:
    if path.endswith(".bin"):
        with open(path, "rb") as f:
            return read_binary_edges(f)
    with open(path) as f:
        return read_ascii_edges(f)


def _cmd_generate(args) -> int:
    if args.generator == "pubmed":
        edges = pubmed_like(args.vertices, avg_degree=args.avg_degree, seed=args.seed)
    elif args.generator == "ba":
        edges = preferential_attachment(
            args.vertices, max(1, int(args.avg_degree // 2)), seed=args.seed
        )
    else:
        scale = max(2, int(np.ceil(np.log2(args.vertices))))
        edges = rmat_edges(
            scale, int(args.avg_degree * args.vertices // 2), seed=args.seed
        )
    if args.output.endswith(".bin"):
        with open(args.output, "wb") as f:
            write_binary_edges(f, edges)
    else:
        with open(args.output, "w") as f:
            write_ascii_edges(f, edges)
    print(graph_stats(edges, name=args.generator).row())
    print(f"wrote {len(edges):,} edges to {args.output}")
    return 0


def _cmd_stats(args) -> int:
    edges = _read_edges(args.edges)
    s = graph_stats(edges, name=args.edges)
    print(s.header())
    print(s.row())
    return 0


def _search_concurrent(mssg, args) -> None:
    """Run all --query pairs through the concurrent scheduler in one drain."""
    pairs = [tuple(int(x) for x in pair.split(":")) for pair in args.query]
    report = mssg.query_many(
        pairs, deadline=args.deadline, max_inflight=args.inflight
    )
    for (s, d), answer in zip(pairs, report.queries):
        hops = answer.result if answer.result is not None else "unreachable"
        notes = ""
        if answer.deadline_exceeded:
            notes += "   ! DEADLINE exceeded (partial lower bound)"
        elif answer.partial:
            notes += "   ! PARTIAL (lower bound)"
        if answer.corrupt_backends:
            notes += (
                f"   ! corruption detected on back-end(s) "
                f"{list(answer.corrupt_backends)}"
            )
        print(
            f"distance({s} -> {d}) = {hops}   "
            f"[{answer.seconds:.4f} s latency, "
            f"{answer.queue_seconds:.4f} s queued, "
            f"{answer.edges_scanned:,} edges]{notes}"
        )
    print(
        f"drained {len(report.queries)} queries in {report.seconds:.4f} virtual s "
        f"({report.edges_per_second:,.0f} edges/s aggregate): "
        f"{report.rounds} rounds, "
        f"{report.shared_passes} shared scan passes served "
        f"{report.shared_served} subscribers"
        + (f", {report.repairs} frames read-repaired" if report.repairs else "")
    )


def _parse_analysis(spec: str):
    """``name[:key=val,...]`` -> (name, params); values coerced to numbers."""
    name, _, tail = spec.partition(":")
    params = {}
    for kv in filter(None, tail.split(",")):
        key, _, val = kv.partition("=")
        for cast in (int, float):
            try:
                val = cast(val)
                break
            except ValueError:
                continue
        params[key.replace("-", "_")] = val
    return name, params


def _run_analyses(mssg, args) -> None:
    """Run each --analysis request and print a one-line summary."""
    for spec in args.analysis:
        name, params = _parse_analysis(spec)
        report = mssg.query(name, **params)
        notes = ""
        if report.partial:
            notes = "   ! PARTIAL (lower bound)"
        if report.failovers or report.device_failures:
            notes += (
                f"   ! device failures: {report.device_failures}, "
                f"failovers: {report.failovers}"
            )
        if name == "pagerank":
            top = ", ".join(f"{v}={r:.4g}" for v, r in report.result["top"][:5])
            body = (
                f"{report.result['num_vertices']:,} vertices, "
                f"{report.result['iterations']} iterations "
                f"(delta {report.result['delta']:.2e}); top: {top}"
            )
        elif name in ("components", "components-dict"):
            sizes = report.result["sizes"]
            body = (
                f"{report.result['num_components']} components, "
                f"largest {sizes[0]:,}" if sizes else "0 components"
            )
        elif name == "ego-net":
            body = (
                f"{report.result['num_vertices']:,} vertices within "
                f"{report.result['hops']} hops of {report.result['source']} "
                f"(per level: {report.result['per_level']})"
            )
        elif name == "triangles":
            body = (
                f"{report.result['triangles']:,} triangles, "
                f"{report.result['wedges']:,} wedges"
            )
        else:
            body = f"{report.result}"
        print(
            f"{name}: {body}   "
            f"[{report.seconds:.4f} s, {report.edges_scanned:,} edges]{notes}"
        )


def _cmd_search(args) -> int:
    edges = _read_edges(args.edges)
    kill = args.kill_backend
    if kill is not None and not 0 <= kill < args.backends:
        print(f"--kill-backend must name a back-end in [0, {args.backends})")
        return 2
    if args.kill_during_ingest and kill is None:
        print("--kill-during-ingest needs --kill-backend")
        return 2
    corrupt = args.corrupt_backend
    if corrupt is not None and not 0 <= corrupt < args.backends:
        print(f"--corrupt-backend must name a back-end in [0, {args.backends})")
        return 2
    nbatches = args.stream_batches
    if nbatches is not None and nbatches < 1:
        print("--stream-batches must be >= 1")
        return 2
    if args.compact and nbatches is None:
        print("--compact needs --stream-batches (nothing to fold otherwise)")
        return 2
    config = MSSGConfig(
        num_backends=args.backends,
        num_frontends=args.frontends,
        backend=args.backend,
        declustering=args.declustering,
        replication=args.replication,
        direction_opt=not args.no_direction_opt,
        compress_adjacency=not args.no_compress_adjacency,
        semi_external=args.semi_external,
        streaming=nbatches is not None,
        # An ingest-time kill must be armed before ingestion runs (virtual
        # clocks restart at 0 for every cluster run).
        fault_plan=(
            FaultPlan.kill_node(args.frontends + kill, at_time=args.kill_time)
            if args.kill_during_ingest
            else None
        ),
    )
    with MSSG(config) as mssg:
        if nbatches is not None:
            for batch in np.array_split(edges, nbatches):
                report = mssg.ingest_stream(batch)
            print(
                f"streamed {report.edges_ingested:,} edges in "
                f"{report.batches} batches, {report.seconds:.4f} virtual s "
                f"({report.edges_per_second:,.0f} edges/s"
                + (
                    f", {report.replication} replicas)"
                    if report.replication > 1
                    else ")"
                )
            )
        else:
            report = mssg.ingest(edges)
            print(
                f"ingested {report.edges_ingested:,} edges in {report.seconds:.4f} "
                f"virtual s ({report.edges_per_second:,.0f} edges/s"
                + (f", {report.replication} replicas)" if report.replication > 1 else ")")
            )
        if report.degraded:
            print(
                f"   ! DEGRADED: back-end(s) {list(report.failed_backends)} died "
                f"mid-ingest, {report.lost_entries:,} entries lost"
            )
        if args.compact:
            cr = mssg.compact()
            print(
                f"compacted {cr.batches_folded} delta-log batch folds "
                f"({cr.entries_folded:,} entries) into base stores in "
                f"{cr.seconds:.4f} s"
                + (
                    f"   ! back-end(s) {list(cr.failed_backends)} died mid-fold"
                    if cr.failed_backends
                    else ""
                )
            )
        plan = FaultPlan([])
        if kill is not None and not args.kill_during_ingest:
            # Installed after ingestion so the fault's virtual time is
            # measured within each query run (clocks restart per run).
            plan.add(DiskFault(node=args.frontends + kill, at_time=args.kill_time))
            print(
                f"fault injected: back-end {kill} dies at "
                f"t={args.kill_time:g}s of each query"
            )
        if corrupt is not None:
            plan.add(
                DiskFault(
                    node=args.frontends + corrupt,
                    kind="corrupt",
                    at_time=args.corrupt_time,
                )
            )
            print(
                f"fault injected: back-end {corrupt}'s stored bytes rot at "
                f"t={args.corrupt_time:g}s of the next device operation window"
            )
        if len(plan):
            mssg.set_fault_plan(plan)
        if args.rebalance:
            rb = mssg.rebalance()
            notes = (
                f"; unrecoverable partitions: {list(rb.unrecoverable_partitions)}"
                if rb.unrecoverable_partitions
                else ""
            )
            print(
                f"rebalanced: {rb.copies_restored} partition copies "
                f"({rb.entries_copied:,} entries) re-replicated in "
                f"{rb.seconds:.4f} s; effective replication {rb.replication}{notes}"
            )
        if args.analysis:
            _run_analyses(mssg, args)
        if args.inflight is not None or args.deadline is not None:
            _search_concurrent(mssg, args)
        else:
            for pair in args.query:
                s, d = (int(x) for x in pair.split(":"))
                answer = mssg.query_bfs(s, d, pipelined=args.pipelined)
                hops = answer.result if answer.result is not None else "unreachable"
                notes = ""
                if answer.failovers or answer.device_failures or answer.partial:
                    degraded = " PARTIAL (lower bound)" if answer.partial else ""
                    notes = (
                        f"   !{degraded} device failures: {answer.device_failures}, "
                        f"failovers: {answer.failovers}, "
                        f"dropped vertices: {answer.dropped_vertices}"
                    )
                if answer.corrupt_backends:
                    notes += (
                        f"   ! corruption detected on back-end(s) "
                        f"{list(answer.corrupt_backends)}; "
                        f"{answer.repairs} frames read-repaired"
                    )
                print(
                    f"distance({s} -> {d}) = {hops}   "
                    f"[{answer.seconds:.4f} s, {answer.edges_scanned:,} edges]{notes}"
                )
                bottom_up = sum(d == "bottom-up" for d in answer.directions)
                if bottom_up:
                    print(
                        f"   hybrid: {bottom_up}/{len(answer.directions)} levels "
                        f"bottom-up ({'-'.join('bu' if d == 'bottom-up' else 'td' for d in answer.directions)}), "
                        f"{answer.edges_examined:,} edges examined, "
                        f"{answer.edges_skipped:,} skipped by early exit"
                    )
        if args.scrub:
            sr = mssg.scrub()
            print(
                f"scrub: {sr.frames_scanned:,} frames verified in "
                f"{sr.seconds:.4f} s — {sr.corrupt_frames} corrupt, "
                f"{sr.repaired_frames} repaired, "
                f"{sr.unrecoverable_frames} unrecoverable"
                + (
                    f" (back-ends {list(sr.corrupt_backends)})"
                    if sr.corrupt_backends
                    else ""
                )
            )
    return 0


def _cmd_experiment(args) -> int:
    fn = _EXPERIMENTS.get(args.id)
    if fn is None:
        print(f"unknown experiment {args.id!r}; try: {', '.join(sorted(_EXPERIMENTS))}")
        return 2
    _, text = fn(scale=args.scale)
    print(text)
    return 0


def _cmd_list(args) -> int:
    print("experiments:", ", ".join(sorted(_EXPERIMENTS)))
    print("workloads:  ", ", ".join(sorted(experiments.WORKLOADS)))
    print("generators: ", ", ".join(_GENERATORS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MSSG reproduction: massive-scale semantic graph framework",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a scale-free edge file")
    g.add_argument("output", help="output path (.bin for binary, else ascii)")
    g.add_argument("--generator", choices=_GENERATORS, default="pubmed")
    g.add_argument("--vertices", type=int, default=4000)
    g.add_argument("--avg-degree", type=float, default=14.84)
    g.add_argument("--seed", type=int, default=0)
    g.set_defaults(func=_cmd_generate)

    s = sub.add_parser("stats", help="Table 5.1-style stats for an edge file")
    s.add_argument("edges")
    s.set_defaults(func=_cmd_stats)

    q = sub.add_parser("search", help="ingest an edge file and run BFS queries")
    q.add_argument("edges")
    q.add_argument("--query", action="append", default=[], metavar="SRC:DST")
    q.add_argument(
        "--analysis",
        action="append",
        default=[],
        metavar="NAME[:K=V,...]",
        help="run a registered analytics query after ingest, e.g. "
        "'pagerank', 'components', 'triangles', 'ego-net:source=3,hops=2'; "
        "repeatable",
    )
    q.add_argument("--backend", default="grDB")
    q.add_argument("--backends", type=int, default=4)
    q.add_argument("--frontends", type=int, default=1)
    q.add_argument("--declustering", default="vertex-rr")
    q.add_argument("--pipelined", action="store_true")
    q.add_argument(
        "--inflight",
        type=int,
        default=None,
        metavar="N",
        help="serve all --query pairs concurrently through the multi-query "
        "scheduler, admitting at most N at a time (shared scans on)",
    )
    q.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="with --inflight: per-query deadline in virtual seconds; "
        "expired queries return partial lower bounds instead of stalling "
        "the batch (implies concurrent serving)",
    )
    q.add_argument(
        "--replication",
        type=int,
        default=1,
        help="copies of each adjacency partition (rotational declustering)",
    )
    q.add_argument(
        "--kill-backend",
        type=int,
        default=None,
        metavar="Q",
        help="inject a fault: back-end Q's disks die during each query",
    )
    q.add_argument(
        "--kill-time",
        type=float,
        default=0.0,
        help="virtual seconds into each query at which the fault fires",
    )
    q.add_argument(
        "--kill-during-ingest",
        action="store_true",
        help="fire the --kill-backend fault during ingestion instead of "
        "during each query (exercises ingestion-time failover)",
    )
    q.add_argument(
        "--no-direction-opt",
        action="store_true",
        help="disable the direction-optimizing (push/pull hybrid) BFS and "
        "search pure top-down like the paper's prototype",
    )
    q.add_argument(
        "--no-compress-adjacency",
        action="store_true",
        help="store raw 8-byte adjacency slots / 16-byte log entries "
        "instead of delta+varint compressed sub-blocks and records (the "
        "paper prototype's format)",
    )
    q.add_argument(
        "--semi-external",
        action="store_true",
        help="semi-external-memory mode: pin per-vertex state (degrees, "
        "id maps, visited levels) in RAM and fetch only the adjacency "
        "blocks holding active fringe sources; answers are identical, "
        "device reads drop on sparse fringes",
    )
    q.add_argument(
        "--stream-batches",
        type=int,
        default=None,
        metavar="N",
        help="ingest incrementally: split the edge file into N batches and "
        "stream each through the crash-safe delta logs (streaming mode); "
        "queries run against the published snapshot",
    )
    q.add_argument(
        "--compact",
        action="store_true",
        help="with --stream-batches: fold the streamed deltas into the base "
        "stores (two-phase, crash-safe) before querying",
    )
    q.add_argument(
        "--rebalance",
        action="store_true",
        help="after ingestion (and any injected death), re-replicate dead "
        "back-ends' partitions onto survivors before querying",
    )
    q.add_argument(
        "--corrupt-backend",
        type=int,
        default=None,
        metavar="Q",
        help="inject bit-rot: back-end Q's stored bytes flip during each "
        "query; checksums detect it and queries read-repair from replicas",
    )
    q.add_argument(
        "--corrupt-time",
        type=float,
        default=0.0,
        help="virtual seconds into each query at which the bit-rot fires",
    )
    q.add_argument(
        "--scrub",
        action="store_true",
        help="after the queries, verify every stored frame cluster-wide and "
        "repair any remaining corruption from replicas",
    )
    q.set_defaults(func=_cmd_search)

    e = sub.add_parser("experiment", help="regenerate a paper table/figure")
    e.add_argument("id", help="e.g. table5.1, fig5.4")
    e.add_argument("--scale", type=float, default=1.0)
    e.set_defaults(func=_cmd_experiment)

    ls = sub.add_parser("list", help="list experiments and workloads")
    ls.set_defaults(func=_cmd_list)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
