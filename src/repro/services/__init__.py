"""MSSG services: ingestion, query orchestration, declustering."""

from .declustering import (
    Declusterer,
    EdgeRoundRobin,
    ReplicatedDeclusterer,
    VertexHash,
    VertexRoundRobin,
    WindowGreedy,
)
from .ingestion import IngestionService, IngestReport
from .query import DrainReport, QueryReport, QueryService
from .scheduler import QuerySpec
from .vertexprog import (
    ComponentsProgram,
    EgoNetProgram,
    PageRankProgram,
    VertexProgram,
    VPConfig,
)

__all__ = [
    "ComponentsProgram",
    "Declusterer",
    "DrainReport",
    "EdgeRoundRobin",
    "EgoNetProgram",
    "IngestReport",
    "IngestionService",
    "PageRankProgram",
    "QueryReport",
    "QueryService",
    "QuerySpec",
    "VPConfig",
    "VertexProgram",
    "ReplicatedDeclusterer",
    "VertexHash",
    "VertexRoundRobin",
    "WindowGreedy",
]
