"""MSSG services: ingestion, query orchestration, declustering."""

from .declustering import (
    Declusterer,
    EdgeRoundRobin,
    ReplicatedDeclusterer,
    VertexHash,
    VertexRoundRobin,
    WindowGreedy,
)
from .ingestion import IngestionService, IngestReport
from .query import QueryReport, QueryService

__all__ = [
    "Declusterer",
    "EdgeRoundRobin",
    "IngestReport",
    "IngestionService",
    "QueryReport",
    "QueryService",
    "ReplicatedDeclusterer",
    "VertexHash",
    "VertexRoundRobin",
    "WindowGreedy",
]
