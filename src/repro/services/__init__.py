"""MSSG services: ingestion, query orchestration, declustering."""

from .declustering import (
    Declusterer,
    EdgeRoundRobin,
    ReplicatedDeclusterer,
    VertexHash,
    VertexRoundRobin,
    WindowGreedy,
)
from .ingestion import IngestionService, IngestReport
from .query import DrainReport, QueryReport, QueryService
from .scheduler import QuerySpec

__all__ = [
    "Declusterer",
    "DrainReport",
    "EdgeRoundRobin",
    "IngestReport",
    "IngestionService",
    "QueryReport",
    "QueryService",
    "QuerySpec",
    "ReplicatedDeclusterer",
    "VertexHash",
    "VertexRoundRobin",
    "WindowGreedy",
]
