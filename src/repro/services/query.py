"""Query Service (§3.3): registry and orchestration of analyses.

Data-analysis techniques register with the service by name and run against
the stored graph through the unified GraphDB interface, with awareness of
the data distribution (vertex- vs edge-granularity).  The reference
analysis is the relationship query of §4.2 — parallel out-of-core BFS in
its level-synchronous (Algorithm 1) and pipelined (Algorithm 2) forms —
plus two further analyses as examples of the pluggable interface:
``degree`` (local degree census) and ``neighborhood`` (k-hop vertex count).

Queries execute on the *back-end* ranks of the cluster through a
sub-communicator; front-end ranks sit idle, exactly as in the deployment
of Figure 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


from ..bfs import (
    BFSConfig,
    DirectionConfig,
    ExternalVisited,
    FaultTolerance,
    InMemoryVisited,
    NOT_FOUND,
    PinnedVisited,
    oocbfs_program,
    pipelined_bfs_program,
)
from ..graphdb.interface import GraphDB
from ..simcluster.cluster import SimCluster
from ..simcluster.comm import SubComm
from ..util.errors import ConfigError
from .declustering import Declusterer
from .scheduler import QuerySpec, multiplex_program

__all__ = ["QueryService", "QueryReport", "DrainReport"]


@dataclass
class QueryReport:
    """Aggregated outcome of one query run."""

    analysis: str
    seconds: float  # virtual makespan across back-end ranks
    result: Any
    edges_scanned: int = 0
    levels: int = 0
    #: Some adjacency was never expanded (replicas exhausted or retry budget
    #: blown): ``result`` is a lower bound, not the exact answer.
    partial: bool = False
    #: Fringe shards re-expanded on surviving replicas across all ranks.
    failovers: int = 0
    #: Back-end devices that failed (raised DeviceFailedError) mid-query.
    device_failures: int = 0
    #: Back-ends (sub-communicator indices) whose device returned a CRC-bad
    #: frame mid-query; their shards failed over like dead ranks, but the
    #: devices are alive and the façade schedules read-repair for them.
    corrupt_backends: tuple = ()
    #: Corrupt frames rewritten from clean replica data after the query
    #: (read-repair).  0 when nothing was corrupt or replication is 1.
    repairs: int = 0
    #: Total fringe vertices dropped because no replica could expand them.
    dropped_vertices: int = 0
    #: Direction chosen per BFS level when the hybrid ran ("top-down" /
    #: "bottom-up"); empty for pure top-down searches.
    directions: tuple = ()
    #: Adjacency entries examined by bottom-up claim checks (all ranks).
    edges_examined: int = 0
    #: Adjacency entries skipped by bottom-up early exit (all ranks).
    edges_skipped: int = 0
    #: The query blew its virtual-seconds deadline and was cut off at a
    #: level boundary; ``result``/``partial`` describe what it got done.
    deadline_exceeded: bool = False
    #: Fairness tag the query was scheduled under (concurrent drains only).
    tenant: str = "default"
    #: Virtual seconds spent queued before admission (concurrent drains
    #: only; 0 when the query ran solo or was admitted immediately).
    queue_seconds: float = 0.0
    #: Streaming deployments: the snapshot id (batch seq) the query was
    #: admitted at.  The answer reflects exactly the batches published up
    #: to this id, however many more landed while it ran.  ``None`` when
    #: the deployment is not streaming.
    snapshot_seq: int | None = None

    @property
    def edges_per_second(self) -> float:
        return self.edges_scanned / self.seconds if self.seconds > 0 else 0.0


@dataclass
class DrainReport:
    """Outcome of one concurrent drain: per-query reports plus totals."""

    #: One :class:`QueryReport` per submitted query, in submission order.
    #: Each report's ``seconds`` is that query's own admission-to-completion
    #: latency (max over ranks), not the drain makespan.
    queries: list
    #: Virtual makespan of the whole drain across back-end ranks.
    seconds: float = 0.0
    #: Scheduling rounds the multiplexer ran (max over ranks).
    rounds: int = 0
    #: Device passes performed for shared sweeps, summed over ranks.
    shared_passes: int = 0
    #: Shared sweeps served from a published pass (device passes avoided).
    shared_served: int = 0
    #: Corrupt frames healed by read-repair after the drain.
    repairs: int = 0
    #: Stream batches applied on every back-end mid-drain (in-drain ingest
    #: via ``MSSG.query_many(stream_batches=...)``); 0 otherwise.
    stream_batches: int = 0

    @property
    def edges_scanned(self) -> int:
        return sum(r.edges_scanned for r in self.queries)

    @property
    def edges_per_second(self) -> float:
        return self.edges_scanned / self.seconds if self.seconds > 0 else 0.0


class QueryService:
    """Runs registered analyses on the back-end partition of a cluster."""

    def __init__(
        self,
        cluster: SimCluster,
        dbs: list[GraphDB],
        declusterer: Declusterer,
        num_frontends: int = 0,
        fault_tolerant: bool | None = None,
        max_retries: int = 2,
        attempt_timeout: float | None = None,
        direction_opt: bool = True,
        checksums: bool = False,
        max_inflight: int = 64,
        shared_scans: bool = True,
        semi_external: bool = False,
    ):
        if cluster.nranks < num_frontends + len(dbs):
            raise ConfigError("cluster too small for the requested service layout")
        self.cluster = cluster
        self.dbs = dbs
        self.declusterer = declusterer
        self.num_frontends = num_frontends
        #: Copies of each partition, taken from the (possibly replicated)
        #: declusterer the graph was ingested with.
        self.replication = getattr(declusterer, "replication", 1)
        # Default: run the failover protocol exactly when the data is
        # replicated.  Forcing it on with replication=1 still converts
        # device deaths into flagged partial results instead of crashes.
        self.fault_tolerant = (
            self.replication > 1 if fault_tolerant is None else fault_tolerant
        )
        self.max_retries = max_retries
        self.attempt_timeout = attempt_timeout
        #: Library default for the direction-optimizing hybrid; individual
        #: queries can override with ``direction_opt=...``.
        self.direction_opt = direction_opt
        #: Put per-query scratch devices (the external visited structure)
        #: behind the CRC32 frame layer too, matching the back-end stores.
        self.checksums = checksums
        if max_inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1, got {max_inflight}")
        #: Admission cap for concurrent drains: queries past this many
        #: in flight wait in the FIFO queue (per-query ``queue_seconds``).
        self.max_inflight = max_inflight
        #: Arm shared backend sweeps (one device pass fanned to all of a
        #: round's subscribers) during concurrent drains.
        self.shared_scans = shared_scans
        #: Semi-external-memory mode: ``visited="external"`` queries keep
        #: their level array resident (:class:`PinnedVisited`) instead of
        #: paging it to a per-query scratch device.
        self.semi_external = semi_external
        #: Queries accepted by :meth:`submit`, awaiting the next :meth:`drain`.
        self._submitted: list[QuerySpec] = []
        #: Vertex-id space size, recorded at ingest time; sizes the hybrid's
        #: fringe bitmap.  ``None`` (nothing ingested through the façade)
        #: keeps BFS pure top-down.
        self.num_vertices: int | None = None
        #: Back-end indices recorded dead by a rebalance pass.  Seeded into
        #: every query's fault state so routing skips them outright instead
        #: of rediscovering the deaths through failover rounds.
        self.known_dead: set[int] = set()
        self._visited_seq = 0
        self._analyses: dict[str, Callable] = {}
        self.register("bfs", self._bfs_analysis)
        self.register("pipelined-bfs", self._pipelined_bfs_analysis)
        self.register("degree", self._degree_analysis)
        self.register("neighborhood", self._neighborhood_analysis)
        # Extension analyses live in their own module (runtime import to
        # avoid a cycle: analyses.py needs QueryReport from this module).
        from .analyses import register_extensions
        from .vertexprog import register_vertex_programs

        register_extensions(self)
        # The scatter/gather runtime suite registers last: it overrides the
        # dict-based "components" extension (kept as "components-dict").
        register_vertex_programs(self)

    # -- registry -----------------------------------------------------------

    def register(self, name: str, runner: Callable, override: bool = False) -> None:
        """Register an analysis: ``runner(**params) -> QueryReport``.

        Duplicate names raise :class:`ConfigError` unless ``override=True``
        is passed explicitly — a plug-in must not be able to shadow a
        built-in (or another plug-in) by accident.
        """
        if name in self._analyses and not override:
            raise ConfigError(
                f"analysis {name!r} is already registered; "
                "pass override=True to replace it"
            )
        self._analyses[name] = runner

    def analyses(self) -> list[str]:
        return sorted(self._analyses)

    def query(self, analysis: str, **params) -> QueryReport:
        runner = self._analyses.get(analysis)
        if runner is None:
            raise ConfigError(
                f"no analysis {analysis!r} registered; available: {self.analyses()}"
            )
        return runner(**params)

    # -- execution plumbing ----------------------------------------------------

    def _backend_ranks(self) -> list[int]:
        F = self.num_frontends
        return list(range(F, F + len(self.dbs)))

    def _run_on_backends(self, make_backend_program) -> list[Any]:
        """Run a program on each back-end rank (front-ends idle), using a
        sub-communicator so the analysis sees dense ranks 0..P-1."""
        backend_ranks = self._backend_ranks()
        group = set(backend_ranks)

        def program(ctx):
            if ctx.rank not in group:
                return None
            subcomm = SubComm(ctx.comm, backend_ranks)
            sub_ctx = _SubContext(ctx, subcomm)
            q = backend_ranks.index(ctx.rank)
            result = yield from make_backend_program(q)(sub_ctx)
            return result

        raw = self.cluster.run(program)
        return [raw[r] for r in backend_ranks]

    # -- built-in analyses ---------------------------------------------------------

    def _make_visited(self, ctx, kind: str, seq: int):
        if kind == "memory":
            return InMemoryVisited()
        if kind == "external":
            if self.semi_external and self.num_vertices:
                # Semi-EM pins the per-query level array in RAM (charged to
                # the budget at ingest time) — zero visited paging.  Levels
                # are identical to the paged structure's.
                return PinnedVisited(self.num_vertices)
            # A fresh scratch file per query: level marks must not leak
            # between searches.
            dev = ctx.node.disk(f"visited-{seq}")
            if self.checksums:
                from ..storage.integrity import wrap_device

                dev = wrap_device(dev)
            return ExternalVisited(dev)
        raise ConfigError(f"unknown visited structure {kind!r}")

    def _ft(self) -> FaultTolerance | None:
        if not self.fault_tolerant:
            return None
        # A rebalanced declusterer carries an explicit (no longer
        # rotational) chain map; hand it to the failover protocol so
        # shards route straight to the repaired holders.
        chain_map = getattr(self.declusterer, "chain_map", None)
        return FaultTolerance(
            replication=self.replication,
            max_retries=self.max_retries,
            attempt_timeout=self.attempt_timeout,
            chains=chain_map() if callable(chain_map) else None,
            known_dead=frozenset(self.known_dead),
        )

    def _direction(self, direction_opt, direction_schedule) -> DirectionConfig | None:
        """Build the hybrid's config for one query (``None`` = top-down).

        The hybrid needs the vertex->owner map (to know whose adjacency to
        pull) and the id-space size (to size the bitmap); without either —
        or when turned off — BFS runs the paper's pure top-down search.
        """
        enabled = self.direction_opt if direction_opt is None else direction_opt
        if not enabled or not self.declusterer.owner_known or not self.num_vertices:
            return None
        return DirectionConfig(
            num_vertices=self.num_vertices,
            schedule=tuple(direction_schedule) if direction_schedule else None,
        )

    def _bfs_common(
        self,
        program,
        source,
        dest,
        visited,
        max_levels,
        prefetch=False,
        direction_opt=None,
        direction_schedule=None,
        **alg_kw,
    ):
        cfg = BFSConfig(
            source=int(source),
            dest=int(dest),
            owner_known=self.declusterer.owner_known,
            max_levels=max_levels,
            prefetch=prefetch,
            ft=self._ft(),
            direction=self._direction(direction_opt, direction_schedule),
        )
        owner_of = self.declusterer.owner_of if self.declusterer.owner_known else None
        self._visited_seq += 1
        seq = self._visited_seq

        def make(q):
            def backend_program(ctx):
                vis = self._make_visited(ctx, visited, seq)
                res = yield from program(
                    ctx, self.dbs[q], cfg, vis, owner_of=owner_of, **alg_kw
                )
                return res

            return backend_program

        results = self._run_on_backends(make)
        levels = {r.found_level for r in results}
        if len(levels) != 1:
            raise ConfigError(f"back-ends disagree on BFS outcome: {levels}")
        found = results[0].found_level
        return QueryReport(
            analysis="bfs",
            seconds=self.cluster.makespan,
            result=None if found == NOT_FOUND else found,
            edges_scanned=sum(r.edges_scanned for r in results),
            levels=max(r.levels_expanded for r in results),
            partial=any(r.partial for r in results),
            failovers=sum(r.failovers for r in results),
            device_failures=sum(r.device_failed for r in results),
            corrupt_backends=tuple(
                q for q, r in enumerate(results) if getattr(r, "corrupt", False)
            ),
            dropped_vertices=sum(r.dropped_vertices for r in results),
            # The direction sequence is rank-uniform by construction; take
            # rank 0's.  Examined/skipped counts sum (disjoint scan sets).
            directions=tuple(results[0].directions),
            edges_examined=sum(r.edges_examined for r in results),
            edges_skipped=sum(r.edges_skipped for r in results),
        )

    # -- concurrent multi-query serving ---------------------------------------

    def submit(
        self,
        source=-1,
        dest=-1,
        tenant: str = "default",
        deadline: float | None = None,
        visited: str = "memory",
        max_levels: int = 64,
        prefetch: bool = False,
        direction_opt: bool | None = None,
        direction_schedule=None,
        analysis: str = "bfs",
        params: dict | None = None,
    ) -> int:
        """Queue one query for the next :meth:`drain`.

        The default analysis is the relationship query (``source``/``dest``
        BFS); passing ``analysis`` with one of the drain-capable vertex
        programs ("pagerank", "components", "ego-net", "triangles") queues
        an analytics query instead, parameterized by ``params``, and it
        interleaves with BFS under the same admission control.  Returns the
        query id — the index of its report in the drain's ``queries``
        list.  ``deadline`` is a virtual-seconds budget counted from
        admission; an expired query is cut off at its next level boundary
        and reported partial with ``deadline_exceeded=True``.
        """
        if analysis != "bfs":
            from .vertexprog import VP_ANALYSES

            if analysis not in VP_ANALYSES:
                raise ConfigError(
                    f"analysis {analysis!r} cannot be drained concurrently; "
                    f"available: {('bfs',) + VP_ANALYSES}"
                )
        qid = len(self._submitted)
        self._submitted.append(
            QuerySpec(
                qid=qid,
                source=int(source),
                dest=int(dest),
                tenant=str(tenant),
                deadline=deadline,
                visited=visited,
                max_levels=int(max_levels),
                prefetch=bool(prefetch),
                direction_opt=direction_opt,
                direction_schedule=(
                    tuple(direction_schedule) if direction_schedule else None
                ),
                analysis=analysis,
                params=dict(params) if params else None,
            )
        )
        return qid

    def drain(
        self,
        max_inflight: int | None = None,
        shared_scans: bool | None = None,
        stream_feed=None,
    ) -> DrainReport:
        """Run every submitted query to completion, interleaved level-by-level.

        All queries share one cluster run (and one sub-communicator): the
        multiplexer advances each admitted query one BFS level at a time in
        a rank-uniform round-robin over tenants, arming shared backend
        sweeps whenever at least two of a round's queries need the same
        device pass.  Answers are bit-identical to running the same queries
        back-to-back with :meth:`query`; only the virtual timeline (and the
        device work saved by sharing) differs.

        ``stream_feed`` (a :class:`~repro.services.streaming.StreamFeed`)
        interleaves ingest with the drain: its batches land on the delta
        logs at pre-assigned scheduling rounds, and each query runs against
        the snapshot published at its admission round — answers are
        bit-identical to admitting the same query against a store that
        stopped ingesting at that snapshot.
        """
        specs, self._submitted = self._submitted, []
        if not specs:
            return DrainReport(queries=[])
        inflight = self.max_inflight if max_inflight is None else int(max_inflight)
        if inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1, got {inflight}")
        sharing = self.shared_scans if shared_scans is None else bool(shared_scans)
        # BFS specs get an Algorithm-1 config; analytics specs get a
        # level-marked vertex-program generator factory instead.
        from .vertexprog import make_vp_generator, vp_report

        cfgs = []
        seqs = []
        vp_gens = {}
        for s in specs:
            if s.analysis == "bfs":
                cfgs.append(
                    BFSConfig(
                        source=s.source,
                        dest=s.dest,
                        owner_known=self.declusterer.owner_known,
                        max_levels=s.max_levels,
                        prefetch=s.prefetch,
                        ft=self._ft(),
                        direction=self._direction(s.direction_opt, s.direction_schedule),
                        level_marks=True,
                    )
                )
            else:
                cfgs.append(None)
                vp_gens[s.qid] = make_vp_generator(
                    self, s.analysis, s.params or {}, level_marks=True
                )
            self._visited_seq += 1
            seqs.append(self._visited_seq)
        owner_of = self.declusterer.owner_of if self.declusterer.owner_known else None

        def make(q):
            def backend_program(ctx):
                def make_visited(c, qid):
                    return self._make_visited(c, specs[qid].visited, seqs[qid])

                def make_gen(c, qid):
                    if qid in vp_gens:
                        return vp_gens[qid](c, q)
                    return oocbfs_program(
                        c,
                        self.dbs[q],
                        cfgs[qid],
                        make_visited(c, qid),
                        owner_of=owner_of,
                    )

                out = yield from multiplex_program(
                    ctx,
                    self.dbs[q],
                    specs,
                    cfgs,
                    make_visited,
                    owner_of,
                    inflight,
                    sharing,
                    make_gen=make_gen,
                    streamer=(
                        None
                        if stream_feed is None
                        else stream_feed.state.for_rank(stream_feed, q)
                    ),
                )
                return out

            return backend_program

        rank_outs = self._run_on_backends(make)
        reports = []
        for spec in specs:
            per_rank = [ro.queries[spec.qid] for ro in rank_outs]
            results = [o.result for o in per_rank]
            if spec.analysis != "bfs":
                vp = vp_report(
                    spec.analysis,
                    spec.params or {},
                    results,
                    seconds=max(o.latency_seconds for o in per_rank),
                    edges_scanned=sum(o.edges_scanned for o in per_rank),
                    tenant=spec.tenant,
                    queue_seconds=max(o.queue_seconds for o in per_rank),
                )
                # Admission (and therefore the snapshot) is rank-uniform.
                vp.snapshot_seq = per_rank[0].snapshot_seq
                reports.append(vp)
                continue
            levels = {r.found_level for r in results}
            if len(levels) != 1:
                raise ConfigError(
                    f"back-ends disagree on BFS outcome for query {spec.qid}: {levels}"
                )
            found = results[0].found_level
            reports.append(
                QueryReport(
                    analysis="bfs",
                    seconds=max(o.latency_seconds for o in per_rank),
                    result=None if found == NOT_FOUND else found,
                    edges_scanned=sum(o.edges_scanned for o in per_rank),
                    levels=max(r.levels_expanded for r in results),
                    partial=any(r.partial for r in results),
                    failovers=sum(r.failovers for r in results),
                    device_failures=sum(r.device_failed for r in results),
                    corrupt_backends=tuple(
                        q for q, r in enumerate(results) if getattr(r, "corrupt", False)
                    ),
                    dropped_vertices=sum(r.dropped_vertices for r in results),
                    directions=tuple(results[0].directions),
                    edges_examined=sum(r.edges_examined for r in results),
                    edges_skipped=sum(r.edges_skipped for r in results),
                    deadline_exceeded=any(r.deadline_exceeded for r in results),
                    tenant=spec.tenant,
                    queue_seconds=max(o.queue_seconds for o in per_rank),
                    snapshot_seq=per_rank[0].snapshot_seq,
                )
            )
        return DrainReport(
            queries=reports,
            seconds=self.cluster.makespan,
            rounds=max(ro.rounds for ro in rank_outs),
            shared_passes=sum(ro.shared_passes for ro in rank_outs),
            shared_served=sum(ro.shared_served for ro in rank_outs),
            stream_batches=(
                stream_feed.batches_applied if stream_feed is not None else 0
            ),
        )

    def _bfs_analysis(
        self,
        source,
        dest,
        visited="memory",
        max_levels=64,
        prefetch=False,
        direction_opt=None,
        direction_schedule=None,
    ):
        return self._bfs_common(
            oocbfs_program,
            source,
            dest,
            visited,
            max_levels,
            prefetch=prefetch,
            direction_opt=direction_opt,
            direction_schedule=direction_schedule,
        )

    def _pipelined_bfs_analysis(
        self,
        source,
        dest,
        visited="memory",
        max_levels=64,
        threshold=256,
        poll_batch=64,
        prefetch=False,
        direction_opt=None,
        direction_schedule=None,
    ):
        return self._bfs_common(
            pipelined_bfs_program,
            source,
            dest,
            visited,
            max_levels,
            prefetch=prefetch,
            direction_opt=direction_opt,
            direction_schedule=direction_schedule,
            threshold=threshold,
            poll_batch=poll_batch,
        )

    def _degree_analysis(self, vertices):
        """Total locally-stored degree of each requested vertex."""
        vertices = [int(v) for v in vertices]

        def make(q):
            def backend_program(ctx):
                local = {v: len(self.dbs[q].get_adjacency(v)) for v in vertices}
                totals = yield from ctx.comm.allreduce(
                    local, lambda a, b: {v: a[v] + b[v] for v in a}
                )
                return totals

            return backend_program

        results = self._run_on_backends(make)
        return QueryReport(
            analysis="degree", seconds=self.cluster.makespan, result=results[0]
        )

    def _neighborhood_analysis(self, source, hops):
        """Count of vertices within ``hops`` of ``source`` (incl. source)."""
        cfg_dest = -1  # unreachable sentinel: run a bounded full BFS

        def make(q):
            def backend_program(ctx):
                vis = InMemoryVisited()
                cfg = BFSConfig(
                    source=int(source),
                    dest=cfg_dest,
                    owner_known=self.declusterer.owner_known,
                    max_levels=int(hops),
                    ft=self._ft(),
                )
                owner_of = (
                    self.declusterer.owner_of if self.declusterer.owner_known else None
                )
                res = yield from oocbfs_program(
                    ctx, self.dbs[q], cfg, vis, owner_of=owner_of
                )
                # Owner mode: per-rank fringes are disjoint, so they sum.
                # Broadcast mode: every rank holds the full fringe, so only
                # rank 0 contributes.  The source itself counts once.
                mine = res.fringe_vertices if (cfg.owner_known or ctx.comm.rank == 0) else 0
                if ctx.comm.rank == 0:
                    mine += 1
                total = yield from ctx.comm.allreduce(mine, lambda a, b: a + b)
                return total

            return backend_program

        results = self._run_on_backends(make)
        return QueryReport(
            analysis="neighborhood", seconds=self.cluster.makespan, result=results[0]
        )


class _SubContext:
    """RankContext facade exposing the sub-communicator to analyses."""

    def __init__(self, parent_ctx, subcomm: SubComm):
        self._parent = parent_ctx
        self.comm = subcomm
        self.rank = subcomm.rank
        self.size = subcomm.size
        self.node = parent_ctx.node

    @property
    def clock(self):
        return self._parent.clock

    @property
    def cpu(self):
        return self._parent.cpu

    def compute(self, seconds: float) -> None:
        self._parent.compute(seconds)

    def charge_edges(self, nedges: int) -> None:
        self._parent.charge_edges(nedges)
