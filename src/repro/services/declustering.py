"""Clustering/declustering strategies for the Ingestion Service (§3.2).

A declusterer decides, for each streamed edge, which back-end GraphDB
instance stores which adjacency entries.  MSSG supports two granularities:

* **vertex-level** — all edges incident to a vertex live on one node, so a
  vertex's complete adjacency list is local to its owner; with a
  deterministic owner function (``GID % p`` or a hash) the mapping is
  globally known and BFS can route fringe vertices to owners;
* **edge-level** — each edge is an independent entity assigned round-robin;
  a vertex's adjacency list ends up scattered, so searches must broadcast
  their fringes.

The default implementations mirror the paper: "the MSSG framework provides
simple declustering techniques such as vertex- and edge-based round-robin
declustering", plus a hash variant and a window-greedy balancing variant as
the customizable-interface extension point.

Determinism contract
--------------------
One declusterer instance is shared by all F front-end reader copies, whose
window processing interleaves under the simulator's scheduler.  Stateful
strategies therefore must not key their decisions on *call order*: the
per-run protocol is ``reset()`` once, ``prepare(edges, window_size)`` once
(a sequential planning pass over the canonical global stream), and then
``assign_at(window, offset)`` per window, where ``offset`` is the window's
first-edge position in the global stream.  Given that protocol, the
partition produced for any window is a pure function of the stream — the
same for every front-end count and copy schedule.
"""

from __future__ import annotations

import abc

import numpy as np

from ..util.errors import ConfigError

__all__ = [
    "Declusterer",
    "ReplicatedDeclusterer",
    "VertexRoundRobin",
    "VertexHash",
    "EdgeRoundRobin",
    "WindowGreedy",
]

_NO_ENTRIES = np.zeros((0, 2), dtype=np.int64)


class Declusterer(abc.ABC):
    """Routes the directed adjacency entries of an edge window to back-ends."""

    #: True when every processor can compute any vertex's owner locally
    #: (enables owner-routed BFS instead of fringe broadcast).
    owner_known: bool = False

    def __init__(self, num_backends: int):
        if num_backends <= 0:
            raise ConfigError(f"need at least one back-end, got {num_backends}")
        self.p = num_backends

    @abc.abstractmethod
    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        """Split one ``(E, 2)`` undirected-edge window into per-back-end
        directed adjacency entries (``dst into adj(src)``)."""

    def assign_at(self, window: np.ndarray, offset: int | None = None) -> list[np.ndarray]:
        """Assign a window known to start at global edge index ``offset``.

        Stateless strategies ignore the offset; stateful ones use it so the
        result is independent of which reader copy presents the window (and
        in which order).  ``offset=None`` falls back to :meth:`assign`'s
        call-order semantics.
        """
        return self.assign(window)

    def reset(self) -> None:
        """Clear per-run state; called once at the start of every ingest."""

    def prepare(self, edges: np.ndarray, window_size: int) -> None:
        """Sequential planning pass over the canonical global stream.

        Called once per ingest, after :meth:`reset` and before any
        ``assign_at``.  Strategies whose decisions depend on what was seen
        *earlier in the stream* build their summary tables here, so the
        parallel assignment phase is a pure lookup.
        """

    def assign_routed(
        self, window: np.ndarray, dead=frozenset(), offset: int | None = None
    ) -> tuple[list[np.ndarray], int, list[tuple[tuple[int, ...], int]]]:
        """Like :meth:`assign_at`, but skipping ``dead`` back-ends.

        Returns ``(parts, lost, copies)``: ``lost`` counts entries whose
        every holder was dead at assignment time, and ``copies[u]`` is
        ``(holders, n)`` — the back-ends partition ``u``'s ``n`` entries
        were actually shipped to.  The caller correlates ``copies`` with
        writer-side failures to count entries that died in flight on every
        recipient.  Without replication a partition's only holder is its
        owner, so entries bound for a dead back-end are dropped — the
        ``replication=1`` degraded mode of ingestion-time failover.
        """
        parts = self.assign_at(window, offset)
        copies: list[tuple[tuple[int, ...], int]] = []
        lost = 0
        for q, part in enumerate(parts):
            if dead and q in dead:
                lost += len(part)
                parts[q] = _NO_ENTRIES
                copies.append(((), len(part)))
            else:
                copies.append(((q,), len(part)))
        return parts, lost, copies

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup (only meaningful when owner_known)."""
        raise NotImplementedError(f"{type(self).__name__} has no global owner map")


def _both_directions(window: np.ndarray) -> np.ndarray:
    return np.vstack([window, window[:, ::-1]])


class VertexRoundRobin(Declusterer):
    """Vertex granularity with the globally known ``GID % p`` map."""

    owner_known = True

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        entries = _both_directions(np.asarray(window, dtype=np.int64))
        owners = entries[:, 0] % self.p
        return [entries[owners == q] for q in range(self.p)]

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        return np.asarray(vertices, dtype=np.int64) % self.p


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mix (splitmix64 finalizer), vectorized."""
    z = x.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class VertexHash(Declusterer):
    """Vertex granularity with a hashed owner map (breaks id-locality skew)."""

    owner_known = True

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        entries = _both_directions(np.asarray(window, dtype=np.int64))
        owners = self.owner_of(entries[:, 0])
        return [entries[owners == q] for q in range(self.p)]

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        vs = np.asarray(vertices, dtype=np.int64)
        return (_splitmix64(vs) % np.uint64(self.p)).astype(np.int64)


class EdgeRoundRobin(Declusterer):
    """Edge granularity: the i-th streamed edge goes, whole, to node i % p.

    Both directions of the edge are stored on that node so the edge is
    locally searchable, but a vertex's adjacency list is scattered across
    nodes — the configuration that forces fringe broadcast in Algorithm 1.
    """

    owner_known = False

    def __init__(self, num_backends: int):
        super().__init__(num_backends)
        self._counter = 0

    def reset(self) -> None:
        self._counter = 0

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        window = np.asarray(window, dtype=np.int64)
        parts = self._assign_from(window, self._counter)
        self._counter += len(window)
        return parts

    def assign_at(self, window: np.ndarray, offset: int | None = None) -> list[np.ndarray]:
        if offset is None:
            return self.assign(window)
        # The i-th edge of the *stream* goes to node i % p: keyed on the
        # window's global offset, not on how many windows this instance
        # happened to see first — identical for every front-end count.
        return self._assign_from(np.asarray(window, dtype=np.int64), offset)

    def _assign_from(self, window: np.ndarray, start: int) -> list[np.ndarray]:
        idx = (np.arange(len(window)) + start) % self.p
        out = []
        for q in range(self.p):
            part = window[idx == q]
            out.append(_both_directions(part) if len(part) else _NO_ENTRIES)
        return out


class WindowGreedy(Declusterer):
    """Vertex granularity with greedy first-touch + load balancing.

    The "smarter clustering" extension point of §3.2: previously unseen
    vertices are assigned to the currently least-loaded back-end, and
    subsequent edges follow the sticky assignment.  The summary information
    is the vertex→owner table accumulated so far, so the map is globally
    known (ingestion shares it with the query side).

    The table is order-sensitive, so under the ingestion protocol it is
    built once by :meth:`prepare` — a sequential pass over the canonical
    global window stream — and the parallel ``assign_at`` phase is a pure
    table lookup, independent of reader-copy interleaving.  Standalone
    ``assign`` calls (no prepare) keep the legacy streaming behavior.
    """

    owner_known = True

    def __init__(self, num_backends: int):
        super().__init__(num_backends)
        self._owner: dict[int, int] = {}
        self._load = np.zeros(num_backends, dtype=np.int64)
        self._prepared = False
        # Sorted-array mirror of ``_owner`` for vectorized lookups.
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=np.int64)
        self._table_dirty = False

    def reset(self) -> None:
        self._owner.clear()
        self._load[:] = 0
        self._prepared = False
        self._keys = np.empty(0, dtype=np.int64)
        self._vals = np.empty(0, dtype=np.int64)
        self._table_dirty = False

    def prepare(self, edges: np.ndarray, window_size: int) -> None:
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if window_size <= 0:
            raise ConfigError(f"window_size must be positive, got {window_size}")
        for start in range(0, len(edges), window_size):
            self._greedy(_both_directions(edges[start : start + window_size]))
        self._prepared = True

    def _greedy(self, entries: np.ndarray) -> np.ndarray:
        """First-touch least-loaded assignment; updates table and loads."""
        owners = np.empty(len(entries), dtype=np.int64)
        table = self._owner
        for i, src in enumerate(entries[:, 0]):
            src = int(src)
            q = table.get(src)
            if q is None:
                q = int(np.argmin(self._load))
                table[src] = q
                self._table_dirty = True
            self._load[q] += 1
            owners[i] = q
        return owners

    def _table_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        if self._table_dirty:
            keys = np.fromiter(self._owner.keys(), dtype=np.int64, count=len(self._owner))
            vals = np.fromiter(self._owner.values(), dtype=np.int64, count=len(self._owner))
            order = np.argsort(keys)
            self._keys, self._vals = keys[order], vals[order]
            self._table_dirty = False
        return self._keys, self._vals

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        entries = _both_directions(np.asarray(window, dtype=np.int64))
        if self._prepared:
            owners = self._lookup(entries[:, 0])
        else:
            owners = self._greedy(entries)
        return [entries[owners == q] for q in range(self.p)]

    def _lookup(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized table lookup; unseen vertices fall back to greedy."""
        keys, vals = self._table_arrays()
        if not len(keys):
            return self._greedy(np.column_stack([vertices, vertices]))
        idx = np.minimum(np.searchsorted(keys, vertices), len(keys) - 1)
        known = keys[idx] == vertices
        owners = np.where(known, vals[idx], -1)
        if not known.all():
            # Vertices outside the prepared stream (standalone use only).
            missing = np.flatnonzero(~known)
            vs = vertices[missing]
            owners[missing] = self._greedy(np.column_stack([vs, vs]))
        return owners

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        vs = np.asarray(vertices, dtype=np.int64)
        if not len(vs):
            return vs.copy()
        keys, vals = self._table_arrays()
        if not len(keys):
            raise ConfigError(f"vertex {int(vs[0])} was never ingested")
        idx = np.minimum(np.searchsorted(keys, vs), len(keys) - 1)
        known = keys[idx] == vs
        if not known.all():
            missing = int(vs[np.flatnonzero(~known)[0]])
            raise ConfigError(f"vertex {missing} was never ingested")
        return vals[idx]


class ReplicatedDeclusterer(Declusterer):
    """k-copy wrapper around any base declusterer (rotational declustering).

    Data whose *primary* owner is back-end ``u`` is stored on the replica
    chain ``chains[u]`` — initially the rotational ``{(u + j) % p : j < k}``
    — so every partition survives the loss of any ``k - 1`` back-ends and
    the query side can compute a surviving replica for any shard from the
    owner map alone.  ``owner_of`` keeps reporting the primary owner —
    routing around dead replicas is the failover protocol's job, so a
    healthy cluster behaves exactly like the unreplicated base declusterer
    (just with k× the stored bytes).

    After a back-end dies, :meth:`set_chains` records the repaired layout
    computed by ``MSSG.rebalance()`` (dead holders dropped, re-materialized
    copies appended), and both ingestion rerouting and query failover read
    the explicit chain map instead of assuming the rotational shape.
    """

    def __init__(self, base: Declusterer, replication: int):
        if isinstance(base, ReplicatedDeclusterer):
            raise ConfigError("cannot nest ReplicatedDeclusterer wrappers")
        if not 1 <= replication <= base.p:
            raise ConfigError(
                f"replication must be in [1, {base.p} back-ends], got {replication}"
            )
        super().__init__(base.p)
        self.base = base
        self.replication = replication
        self.owner_known = base.owner_known
        #: Per-primary ordered holder chains; ``chains[u][0]`` is the
        #: effective primary (== ``u`` until ``u`` itself dies).
        self.chains: list[list[int]] = [
            [(u + j) % self.p for j in range(replication)] for u in range(self.p)
        ]
        self._rebuild_holdings()

    # -- chain map ----------------------------------------------------------

    def _rebuild_holdings(self) -> None:
        """Per-holder list of base partitions, in chain-position order."""
        tagged: list[list[tuple[int, int]]] = [[] for _ in range(self.p)]
        for u, chain in enumerate(self.chains):
            for pos, t in enumerate(chain):
                tagged[t].append((pos, u))
        self._holdings = [[u for _, u in sorted(h)] for h in tagged]

    def set_chains(self, chains) -> None:
        """Install a repaired chain map (e.g. after a rebalance pass)."""
        chains = [list(c) for c in chains]
        if len(chains) != self.p:
            raise ConfigError(f"chain map needs {self.p} chains, got {len(chains)}")
        for u, chain in enumerate(chains):
            if len(set(chain)) != len(chain):
                raise ConfigError(f"duplicate holder in chain of partition {u}: {chain}")
            for t in chain:
                if not 0 <= t < self.p:
                    raise ConfigError(f"chain of partition {u} names back-end {t}")
        self.chains = chains
        self._rebuild_holdings()

    def chain_map(self) -> tuple[tuple[int, ...], ...]:
        """Immutable snapshot of the holder chains, for query-side routing."""
        return tuple(tuple(c) for c in self.chains)

    @property
    def effective_replication(self) -> int:
        """Copies of the worst-covered partition under the current chains."""
        return min(len(c) for c in self.chains)

    def replica_chain(self, primary: int) -> list[int]:
        """The ranks storing a copy of ``primary``'s partition, in order."""
        return list(self.chains[primary])

    # -- protocol forwarding -------------------------------------------------

    def reset(self) -> None:
        self.base.reset()

    def prepare(self, edges: np.ndarray, window_size: int) -> None:
        self.base.prepare(edges, window_size)

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        return self._merge(self.base.assign(window))

    def assign_at(self, window: np.ndarray, offset: int | None = None) -> list[np.ndarray]:
        return self._merge(self.base.assign_at(window, offset))

    def _merge(self, parts: list[np.ndarray]) -> list[np.ndarray]:
        return [
            np.vstack([parts[u] for u in held]) if held else _NO_ENTRIES
            for held in self._holdings
        ]

    def assign_routed(
        self, window: np.ndarray, dead=frozenset(), offset: int | None = None
    ) -> tuple[list[np.ndarray], int, list[tuple[tuple[int, ...], int]]]:
        """Death-aware assignment: each base partition goes to the alive
        members of its chain; a partition whose whole chain is dead is
        dropped and counted in ``lost``."""
        base_parts = self.base.assign_at(window, offset)
        if not dead:
            # Healthy fast path: the exact merge (and vstack order) of
            # assign_at, plus the per-partition copy record.
            copies = [
                (tuple(self.chains[u]), len(part))
                for u, part in enumerate(base_parts)
            ]
            return self._merge(base_parts), 0, copies
        collected: list[list[np.ndarray]] = [[] for _ in range(self.p)]
        copies = []
        lost = 0
        for u, part in enumerate(base_parts):
            alive = [t for t in self.chains[u] if t not in dead]
            copies.append((tuple(alive), len(part)))
            if not len(part):
                continue
            if not alive:
                lost += len(part)
                continue
            for t in alive:
                collected[t].append(part)
        parts = [np.vstack(c) if c else _NO_ENTRIES for c in collected]
        return parts, lost, copies

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        return self.base.owner_of(vertices)
