"""Clustering/declustering strategies for the Ingestion Service (§3.2).

A declusterer decides, for each streamed edge, which back-end GraphDB
instance stores which adjacency entries.  MSSG supports two granularities:

* **vertex-level** — all edges incident to a vertex live on one node, so a
  vertex's complete adjacency list is local to its owner; with a
  deterministic owner function (``GID % p`` or a hash) the mapping is
  globally known and BFS can route fringe vertices to owners;
* **edge-level** — each edge is an independent entity assigned round-robin;
  a vertex's adjacency list ends up scattered, so searches must broadcast
  their fringes.

The default implementations mirror the paper: "the MSSG framework provides
simple declustering techniques such as vertex- and edge-based round-robin
declustering", plus a hash variant and a window-greedy balancing variant as
the customizable-interface extension point.
"""

from __future__ import annotations

import abc

import numpy as np

from ..util.errors import ConfigError

__all__ = [
    "Declusterer",
    "ReplicatedDeclusterer",
    "VertexRoundRobin",
    "VertexHash",
    "EdgeRoundRobin",
    "WindowGreedy",
]


class Declusterer(abc.ABC):
    """Routes the directed adjacency entries of an edge window to back-ends."""

    #: True when every processor can compute any vertex's owner locally
    #: (enables owner-routed BFS instead of fringe broadcast).
    owner_known: bool = False

    def __init__(self, num_backends: int):
        if num_backends <= 0:
            raise ConfigError(f"need at least one back-end, got {num_backends}")
        self.p = num_backends

    @abc.abstractmethod
    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        """Split one ``(E, 2)`` undirected-edge window into per-back-end
        directed adjacency entries (``dst into adj(src)``)."""

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        """Vectorized owner lookup (only meaningful when owner_known)."""
        raise NotImplementedError(f"{type(self).__name__} has no global owner map")


def _both_directions(window: np.ndarray) -> np.ndarray:
    return np.vstack([window, window[:, ::-1]])


class VertexRoundRobin(Declusterer):
    """Vertex granularity with the globally known ``GID % p`` map."""

    owner_known = True

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        entries = _both_directions(np.asarray(window, dtype=np.int64))
        owners = entries[:, 0] % self.p
        return [entries[owners == q] for q in range(self.p)]

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        return np.asarray(vertices, dtype=np.int64) % self.p


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mix (splitmix64 finalizer), vectorized."""
    z = x.astype(np.uint64) + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


class VertexHash(Declusterer):
    """Vertex granularity with a hashed owner map (breaks id-locality skew)."""

    owner_known = True

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        entries = _both_directions(np.asarray(window, dtype=np.int64))
        owners = self.owner_of(entries[:, 0])
        return [entries[owners == q] for q in range(self.p)]

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        vs = np.asarray(vertices, dtype=np.int64)
        return (_splitmix64(vs) % np.uint64(self.p)).astype(np.int64)


class EdgeRoundRobin(Declusterer):
    """Edge granularity: the i-th streamed edge goes, whole, to node i % p.

    Both directions of the edge are stored on that node so the edge is
    locally searchable, but a vertex's adjacency list is scattered across
    nodes — the configuration that forces fringe broadcast in Algorithm 1.
    """

    owner_known = False

    def __init__(self, num_backends: int):
        super().__init__(num_backends)
        self._counter = 0

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        window = np.asarray(window, dtype=np.int64)
        idx = (np.arange(len(window)) + self._counter) % self.p
        self._counter += len(window)
        out = []
        for q in range(self.p):
            part = window[idx == q]
            out.append(_both_directions(part) if len(part) else np.zeros((0, 2), np.int64))
        return out


class WindowGreedy(Declusterer):
    """Vertex granularity with greedy first-touch + load balancing.

    The "smarter clustering" extension point of §3.2: within each window,
    previously unseen vertices are assigned to the currently least-loaded
    back-end, and subsequent edges follow the sticky assignment.  The
    summary information is the vertex→owner table accumulated so far, so
    the map is globally known (ingestion shares it with the query side).
    """

    owner_known = True

    def __init__(self, num_backends: int):
        super().__init__(num_backends)
        self._owner: dict[int, int] = {}
        self._load = np.zeros(num_backends, dtype=np.int64)

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        entries = _both_directions(np.asarray(window, dtype=np.int64))
        owners = np.empty(len(entries), dtype=np.int64)
        table = self._owner
        for i, src in enumerate(entries[:, 0]):
            src = int(src)
            q = table.get(src)
            if q is None:
                q = int(np.argmin(self._load))
                table[src] = q
            self._load[q] += 1
            owners[i] = q
        return [entries[owners == q] for q in range(self.p)]

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        vs = np.asarray(vertices, dtype=np.int64)
        try:
            return np.array([self._owner[int(v)] for v in vs], dtype=np.int64)
        except KeyError as missing:
            raise ConfigError(f"vertex {missing} was never ingested") from None


class ReplicatedDeclusterer(Declusterer):
    """k-copy wrapper around any base declusterer (rotational declustering).

    Data whose *primary* owner is back-end ``u`` is stored on the replica
    chain ``{(u + j) % p : j < k}``, so every partition survives the loss
    of any ``k - 1`` back-ends and the query side can compute a surviving
    replica for any shard from the owner map alone.  ``owner_of`` keeps
    reporting the primary owner — routing around dead replicas is the
    query-side failover's job, so a healthy cluster behaves exactly like
    the unreplicated base declusterer (just with k× the stored bytes).
    """

    def __init__(self, base: Declusterer, replication: int):
        if isinstance(base, ReplicatedDeclusterer):
            raise ConfigError("cannot nest ReplicatedDeclusterer wrappers")
        if not 1 <= replication <= base.p:
            raise ConfigError(
                f"replication must be in [1, {base.p} back-ends], got {replication}"
            )
        super().__init__(base.p)
        self.base = base
        self.replication = replication
        self.owner_known = base.owner_known

    def assign(self, window: np.ndarray) -> list[np.ndarray]:
        parts = self.base.assign(window)
        k, p = self.replication, self.p
        return [np.vstack([parts[(q - j) % p] for j in range(k)]) for q in range(p)]

    def owner_of(self, vertices: np.ndarray) -> np.ndarray:
        return self.base.owner_of(vertices)

    def replica_chain(self, primary: int) -> list[int]:
        """The ranks storing a copy of ``primary``'s partition, in order."""
        return [(primary + j) % self.p for j in range(self.replication)]
