"""Ingestion Service (§3.2): streaming edges into back-end GraphDBs.

The entry point of graph data into MSSG.  Front-end nodes read their share
of the edge stream in fixed-size *windows* (blocks), pay the ASCII-parsing
CPU cost of the input format, apply the configured declusterer, and ship
per-back-end blocks over keyed DataCutter streams; each back-end node hosts
a GraphDB-writer filter that stores arriving blocks.

Expressed as the DataCutter filter graph

    reader (x F copies, front-end ranks)  --keyed-->  writer (x P copies)

exactly as Figure 3.1 lays the services out.

Fault tolerance
---------------
A back-end whose device dies mid-stream no longer aborts the run.  The
writer filter converts the :class:`~repro.util.errors.DeviceFailedError`
into a death announcement on the DataCutter runtime's fault board and
keeps draining its input (counting the entries it could not store); reader
copies poll the board per window and reroute a dead back-end's shards to
the surviving members of its :class:`ReplicatedDeclusterer` chain —
``replication=1`` has no surviving holders, so the shard is dropped.  The
outcome is flagged on the report (``degraded``, ``lost_entries``,
``failed_backends``) instead of raised; ``MSSG.rebalance()`` restores full
replication afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..datacutter import END_OF_STREAM, DataCutterRuntime, Filter, FilterGraph
from ..graphdb.interface import GraphDB
from ..graphgen.stream import edge_windows, split_for_ingesters
from ..simcluster.cluster import SimCluster
from ..util.errors import ConfigError, DeviceFailedError
from .declustering import Declusterer

__all__ = ["IngestionService", "IngestReport"]


@dataclass
class IngestReport:
    """Outcome of one ingestion run."""

    seconds: float  # virtual makespan of the whole ingestion
    edges_ingested: int  # undirected edges consumed from the stream
    entries_stored: int  # directed adjacency entries written (all replicas)
    windows: int
    per_backend_entries: list[int]
    #: Copies stored of each adjacency partition (1 = unreplicated).
    replication: int = 1
    #: A back-end died mid-stream: some partitions are stored with fewer
    #: than ``replication`` copies (run ``MSSG.rebalance()`` to repair).
    degraded: bool = False
    #: Directed adjacency entries no surviving back-end holds a copy of:
    #: shards whose whole replica chain was already dead at assignment,
    #: plus in-flight entries that *every* recipient of their partition's
    #: window block failed to store.
    lost_entries: int = 0
    #: Back-end indices (0-based, not cluster ranks) that died mid-ingest.
    failed_backends: tuple[int, ...] = ()
    #: Stream batches folded into this report (1 for a one-shot ingest).
    batches: int = 1

    @property
    def edges_per_second(self) -> float:
        return self.edges_ingested / self.seconds if self.seconds else float("inf")

    def absorb(self, other: "IngestReport") -> None:
        """Fold a later stream batch's report into this accumulated one.

        Counters sum (seconds, edges, entries, windows, lost, batches; the
        per-back-end entry counts elementwise), degraded/failed-set state
        unions, and ``replication`` adopts the latest batch's value.
        """
        self.seconds += other.seconds
        self.edges_ingested += other.edges_ingested
        self.entries_stored += other.entries_stored
        self.windows += other.windows
        if len(self.per_backend_entries) == len(other.per_backend_entries):
            self.per_backend_entries = [
                a + b
                for a, b in zip(self.per_backend_entries, other.per_backend_entries)
            ]
        else:
            self.per_backend_entries = list(other.per_backend_entries)
        self.replication = other.replication
        self.degraded = self.degraded or other.degraded
        self.lost_entries += other.lost_entries
        self.failed_backends = tuple(
            sorted(set(self.failed_backends) | set(other.failed_backends))
        )
        self.batches += other.batches


@dataclass
class _ReaderResult:
    windows: int = 0
    #: Entries dropped because every holder of their partition was dead.
    lost_entries: int = 0
    #: Per-window copy record: window offset -> ``copies`` list from
    #: :meth:`Declusterer.assign_routed` (per base partition, the holders
    #: its entries were shipped to and how many).  Correlated with
    #: writer-side failures to count entries lost in flight.
    shards: dict[int, list[tuple[tuple[int, ...], int]]] = field(default_factory=dict)


@dataclass
class _WriterResult:
    stored: int = 0
    #: Entries received after this back-end's device died (not stored here;
    #: surviving replicas may still hold copies).
    unstored: int = 0
    dead: bool = False
    #: Window offsets of the blocks this back-end failed to store.
    unstored_offsets: list[int] = field(default_factory=list)


class _EdgeReader(Filter):
    """Front-end filter: parse windows, decluster, emit per-back-end blocks.

    Instantiated as one filter spec with F copies; each copy reads its
    contiguous share of the edge stream (selected by copy index).  Window
    assignment is keyed on the window's global stream offset, so the
    produced partitions are identical for every front-end count.
    """

    outputs = ("blocks",)

    def __init__(
        self,
        shares: list[np.ndarray],
        offsets: list[int],
        window_size: int,
        declusterer: Declusterer,
        ascii_input: bool,
    ):
        self.shares = shares
        self.offsets = offsets
        self.window_size = window_size
        self.declusterer = declusterer
        self.ascii_input = ascii_input

    def process(self, ctx):
        result = _ReaderResult()
        offset = self.offsets[ctx.copy_index]
        for window in edge_windows(self.shares[ctx.copy_index], self.window_size):
            result.windows += 1
            if self.ascii_input:
                # Parsing "src dst" text lines is front-end CPU work; the
                # paper calls out the ASCII-in/binary-out asymmetry (Fig 5.5).
                ctx.rank_ctx.compute(len(window) * ctx.rank_ctx.cpu.ascii_parse_seconds)
            dead = ctx.dead_copies("writer")
            parts, lost, copies = self.declusterer.assign_routed(window, dead, offset)
            result.lost_entries += lost
            result.shards[offset] = copies
            for q, part in enumerate(parts):
                if len(part):
                    ctx.write("blocks", (q, offset, part), size=16 * len(part) + 8)
            offset += len(window)
        ctx.close_output("blocks")
        return result


class _GraphDBWriter(Filter):
    """Back-end filter: store arriving blocks into this node's GraphDB.

    A device failure mid-stream is announced on the runtime's fault board
    and the filter keeps draining its input (the stream must terminate
    cleanly and in-flight blocks must be accounted), instead of raising
    through the whole ingestion.
    """

    inputs = ("blocks",)

    def __init__(self, db: GraphDB):
        self.db = db

    def process(self, ctx):
        result = _WriterResult()

        def died() -> None:
            result.dead = True
            ctx.announce_death()

        while True:
            item = yield from ctx.read("blocks")
            if item is END_OF_STREAM:
                break
            _, offset, block = item
            if result.dead:
                result.unstored += len(block)
                result.unstored_offsets.append(offset)
                continue
            try:
                self.db.store_edges(block)
                result.stored += len(block)
            except DeviceFailedError:
                died()
                result.unstored += len(block)
                result.unstored_offsets.append(offset)
        if not result.dead:
            try:
                self.db.finalize_ingest()
                self.db.flush()
            except DeviceFailedError:
                died()
        return result


class IngestionService:
    """Runs streaming ingestion on a simulated cluster.

    ``cluster`` must have ``num_frontends + num_backends`` ranks; ranks
    ``[0, F)`` are front-ends, ``[F, F+P)`` are back-ends holding ``dbs``.
    """

    def __init__(
        self,
        cluster: SimCluster,
        dbs: list[GraphDB],
        declusterer: Declusterer,
        num_frontends: int = 1,
        window_size: int = 4096,
        ascii_input: bool = True,
    ):
        if num_frontends < 1:
            raise ConfigError("need at least one front-end ingestion node")
        if declusterer.p != len(dbs):
            raise ConfigError(
                f"declusterer targets {declusterer.p} back-ends but {len(dbs)} DBs given"
            )
        if cluster.nranks < num_frontends + len(dbs):
            raise ConfigError(
                f"cluster has {cluster.nranks} ranks; need {num_frontends + len(dbs)}"
            )
        self.cluster = cluster
        self.dbs = dbs
        self.declusterer = declusterer
        self.num_frontends = num_frontends
        self.window_size = window_size
        self.ascii_input = ascii_input

    def ingest(self, edges: np.ndarray, stores: list | None = None) -> IngestReport:
        """Run one ingestion pass.

        ``stores`` substitutes the write targets while keeping partitioning,
        placement, and fault accounting identical — the streaming path hands
        in per-back-end delta-log sinks that quack like GraphDBs
        (``store_edges`` / ``finalize_ingest`` / ``flush``).
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        targets = stores if stores is not None else self.dbs
        F, P = self.num_frontends, len(self.dbs)
        # Per-run declusterer protocol: clear any state left by a previous
        # ingest (stale round-robin offsets / owner tables would leak into
        # this run's assignments), then run the sequential planning pass so
        # parallel window assignment is schedule-independent.
        self.declusterer.reset()
        self.declusterer.prepare(edges, self.window_size)
        shares = split_for_ingesters(edges, F)
        offsets, acc = [], 0
        for share in shares:
            offsets.append(acc)
            acc += len(share)
        graph = FilterGraph()
        graph.add_filter(
            "reader",
            lambda: _EdgeReader(
                shares, offsets, self.window_size, self.declusterer, self.ascii_input
            ),
            placement=list(range(F)),
        )
        graph.add_filter(
            "writer",
            # One writer spec with P copies; each copy binds its own DB by
            # copy index (copy q sits on rank F + q).
            lambda: _DispatchWriter(targets, F),
            placement=[F + q for q in range(P)],
        )
        graph.connect(
            "reader", "blocks", "writer", "blocks",
            policy="keyed", key_fn=lambda item: item[0],
        )
        results = DataCutterRuntime(graph, self.cluster).run()
        writers: list[_WriterResult] = list(results["writer"])
        readers: list[_ReaderResult] = list(results["reader"])
        replication = getattr(self.declusterer, "replication", 1)
        failed = tuple(q for q, w in enumerate(writers) if w.dead)
        reader_lost = sum(r.lost_entries for r in readers)
        # A copy that died in flight still exists wherever another recipient
        # of the same window's partition stored its copy; entries are lost
        # only when *every* back-end their partition was shipped to failed
        # to store that window's block.
        unstored = {q: set(w.unstored_offsets) for q, w in enumerate(writers)}
        inflight_lost = 0
        for r in readers:
            for off, copies in r.shards.items():
                for holders, n in copies:
                    if holders and n and all(off in unstored[t] for t in holders):
                        inflight_lost += n
        lost = reader_lost + inflight_lost
        return IngestReport(
            seconds=self.cluster.makespan,
            edges_ingested=len(edges),
            entries_stored=sum(w.stored for w in writers),
            windows=sum(r.windows for r in readers),
            per_backend_entries=[w.stored for w in writers],
            replication=replication,
            degraded=bool(failed) or lost > 0,
            lost_entries=lost,
            failed_backends=failed,
        )


class _DispatchWriter(_GraphDBWriter):
    """Writer copy that picks its GraphDB from the copy index."""

    def __init__(self, dbs: list[GraphDB], frontends: int):
        self._dbs = dbs
        self._frontends = frontends

    def process(self, ctx):
        self.db = self._dbs[ctx.copy_index]
        result = yield from super().process(ctx)
        return result
