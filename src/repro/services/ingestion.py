"""Ingestion Service (§3.2): streaming edges into back-end GraphDBs.

The entry point of graph data into MSSG.  Front-end nodes read their share
of the edge stream in fixed-size *windows* (blocks), pay the ASCII-parsing
CPU cost of the input format, apply the configured declusterer, and ship
per-back-end blocks over keyed DataCutter streams; each back-end node hosts
a GraphDB-writer filter that stores arriving blocks.

Expressed as the DataCutter filter graph

    reader (x F copies, front-end ranks)  --keyed-->  writer (x P copies)

exactly as Figure 3.1 lays the services out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datacutter import END_OF_STREAM, DataCutterRuntime, Filter, FilterGraph
from ..graphdb.interface import GraphDB
from ..graphgen.stream import edge_windows, split_for_ingesters
from ..simcluster.cluster import SimCluster
from ..util.errors import ConfigError
from .declustering import Declusterer

__all__ = ["IngestionService", "IngestReport"]


@dataclass
class IngestReport:
    """Outcome of one ingestion run."""

    seconds: float  # virtual makespan of the whole ingestion
    edges_ingested: int  # undirected edges consumed from the stream
    entries_stored: int  # directed adjacency entries written (all replicas)
    windows: int
    per_backend_entries: list[int]
    #: Copies stored of each adjacency partition (1 = unreplicated).
    replication: int = 1

    @property
    def edges_per_second(self) -> float:
        return self.edges_ingested / self.seconds if self.seconds else float("inf")


class _EdgeReader(Filter):
    """Front-end filter: parse windows, decluster, emit per-back-end blocks.

    Instantiated as one filter spec with F copies; each copy reads its
    contiguous share of the edge stream (selected by copy index).
    """

    outputs = ("blocks",)

    def __init__(self, shares: list[np.ndarray], window_size: int, declusterer: Declusterer, ascii_input: bool):
        self.shares = shares
        self.window_size = window_size
        self.declusterer = declusterer
        self.ascii_input = ascii_input

    def process(self, ctx):
        windows = 0
        for window in edge_windows(self.shares[ctx.copy_index], self.window_size):
            windows += 1
            if self.ascii_input:
                # Parsing "src dst" text lines is front-end CPU work; the
                # paper calls out the ASCII-in/binary-out asymmetry (Fig 5.5).
                ctx.rank_ctx.compute(len(window) * ctx.rank_ctx.cpu.ascii_parse_seconds)
            parts = self.declusterer.assign(window)
            for q, part in enumerate(parts):
                if len(part):
                    ctx.write("blocks", (q, part), size=16 * len(part) + 8)
        ctx.close_output("blocks")
        return windows


class _GraphDBWriter(Filter):
    """Back-end filter: store arriving blocks into this node's GraphDB."""

    inputs = ("blocks",)

    def __init__(self, db: GraphDB):
        self.db = db

    def process(self, ctx):
        stored = 0
        while True:
            item = yield from ctx.read("blocks")
            if item is END_OF_STREAM:
                break
            _, block = item
            self.db.store_edges(block)
            stored += len(block)
        self.db.finalize_ingest()
        self.db.flush()
        return stored


class IngestionService:
    """Runs streaming ingestion on a simulated cluster.

    ``cluster`` must have ``num_frontends + num_backends`` ranks; ranks
    ``[0, F)`` are front-ends, ``[F, F+P)`` are back-ends holding ``dbs``.
    """

    def __init__(
        self,
        cluster: SimCluster,
        dbs: list[GraphDB],
        declusterer: Declusterer,
        num_frontends: int = 1,
        window_size: int = 4096,
        ascii_input: bool = True,
    ):
        if num_frontends < 1:
            raise ConfigError("need at least one front-end ingestion node")
        if declusterer.p != len(dbs):
            raise ConfigError(
                f"declusterer targets {declusterer.p} back-ends but {len(dbs)} DBs given"
            )
        if cluster.nranks < num_frontends + len(dbs):
            raise ConfigError(
                f"cluster has {cluster.nranks} ranks; need {num_frontends + len(dbs)}"
            )
        self.cluster = cluster
        self.dbs = dbs
        self.declusterer = declusterer
        self.num_frontends = num_frontends
        self.window_size = window_size
        self.ascii_input = ascii_input

    def ingest(self, edges: np.ndarray) -> IngestReport:
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        F, P = self.num_frontends, len(self.dbs)
        shares = split_for_ingesters(edges, F)
        graph = FilterGraph()
        graph.add_filter(
            "reader",
            lambda: _EdgeReader(shares, self.window_size, self.declusterer, self.ascii_input),
            placement=list(range(F)),
        )
        graph.add_filter(
            "writer",
            # One writer spec with P copies; each copy binds its own DB by
            # copy index (copy q sits on rank F + q).
            lambda: _DispatchWriter(self.dbs, F),
            placement=[F + q for q in range(P)],
        )
        graph.connect(
            "reader", "blocks", "writer", "blocks",
            policy="keyed", key_fn=lambda item: item[0],
        )
        results = DataCutterRuntime(graph, self.cluster).run()
        per_backend = list(results["writer"])
        return IngestReport(
            seconds=self.cluster.makespan,
            edges_ingested=len(edges),
            entries_stored=sum(per_backend),
            windows=sum(results["reader"]),
            per_backend_entries=per_backend,
            replication=getattr(self.declusterer, "replication", 1),
        )


class _DispatchWriter(_GraphDBWriter):
    """Writer copy that picks its GraphDB from the copy index."""

    def __init__(self, dbs: list[GraphDB], frontends: int):
        self._dbs = dbs
        self._frontends = frontends

    def process(self, ctx):
        self.db = self._dbs[ctx.copy_index]
        result = yield from super().process(ctx)
        return result
