"""Shared backend sweeps for the concurrent-query multiplexer.

Several in-flight queries interleaved on one back-end rank often need the
*same* device sweep in one scheduling round: StreamDB answers every fringe
expansion by replaying its whole edge log, and a bottom-up (pull) BFS
level scans adjacency in storage order on any backend.  Running the sweep
once and fanning the decoded adjacency to every subscriber charges the
device exactly one pass; each consumer still pays its own per-edge CPU
(filtering, claim checks), which is where the answers are computed.

The :class:`ScanBoard` is the per-rank rendezvous.  The multiplexer arms a
sweep key for a round only when at least two of the round's queries will
issue that sweep — a lone query takes the exact historical code path, and
a drain of one query never touches the board at all.  Backends consult the
board inside their sweep primitives (``StreamGraphDB._scan``, the
bottom-up claim scan) via the ``scan_board`` attribute the multiplexer
attaches for the duration of a drain.

Every publication carries a *validity token* (the backend's committed edge
count): a sweep published before an ingest can never serve a reader that
expects the grown log, so publications may persist across scheduling
rounds within a drain without a separate invalidation protocol.
"""

from __future__ import annotations

__all__ = ["ScanBoard", "LOG_REPLAY", "BOTTOM_UP_SCAN"]

#: Sweep key: StreamDB's full edge-log replay (decoded ``(E, 2)`` array).
LOG_REPLAY = "log-replay"
#: Sweep key: whole-store storage-order adjacency scan (``{v: neighbors}``).
BOTTOM_UP_SCAN = "bottom-up"


class ScanBoard:
    """Per-rank registry of armed and published backend sweeps."""

    def __init__(self):
        self._armed: set[str] = set()
        self._published: dict[str, tuple[int, object]] = {}
        #: Device passes actually performed on behalf of an armed sweep.
        self.passes = 0
        #: Sweeps answered from a published pass (device passes avoided).
        self.served = 0

    def begin_round(self) -> None:
        """Start a scheduling round: nothing is armed until the multiplexer
        says so.  Publications survive — their tokens keep them honest."""
        self._armed.clear()

    def arm(self, key: str) -> None:
        self._armed.add(key)

    def armed(self, key: str) -> bool:
        return key in self._armed

    def lookup(self, key: str, token: int):
        """The published sweep for ``key`` if its token matches, else None."""
        hit = self._published.get(key)
        if hit is not None and hit[0] == token:
            self.served += 1
            return hit[1]
        return None

    def publish(self, key: str, token: int, value) -> None:
        self.passes += 1
        self._published[key] = (token, value)

    def clear(self) -> None:
        self._armed.clear()
        self._published.clear()
