"""Concurrent multi-query scheduler: interleave BFS queries level-by-level.

One drain runs N relationship queries through a single back-end program
per rank.  Each query is the unmodified Algorithm-1 generator compiled
with ``BFSConfig.level_marks=True``, so it suspends at a *level mark*
after every level-end allreduce — a point where no collective is in
flight on any rank.  The multiplexer advances queries mark-to-mark in a
rank-uniform order, which keeps the interleaved collective sequence (and
therefore the shared sub-communicator's tag stream) identical on every
rank: query A's level can overlap query B's in virtual time without any
message ever matching the wrong collective.

Scheduling policy, all derived from rank-uniform state (the shared spec
list, the active set, allreduced globals) so every rank takes identical
decisions with no extra coordination messages:

* **admission** — FIFO by submission order up to ``max_inflight``;
* **fairness** — each round visits active queries grouped by tenant, with
  the tenant order rotated one step per round, so a tenant with many
  queued queries cannot starve a tenant with one;
* **deadlines** — when any active query carries one, each round ends with
  an allreduce of per-query elapsed-since-admission (max over ranks); an
  expired query is handed ``"abort"`` at its next level mark and returns
  a partial result flagged ``deadline_exceeded`` instead of running on;
* **shared sweeps** — before running a round the multiplexer arms the
  rank's :class:`~repro.services.sharedscan.ScanBoard` for any backend
  sweep at least two of the round's queries will issue (StreamDB log
  replays; bottom-up storage scans, predicted exactly via
  ``DirectionController.peek``), so the device pays one pass per round
  instead of one per query.

Per-query cost attribution: ``db.stats.edges_scanned`` is snapshotted
around every slice (the generator's own start-to-end delta would absorb
the other queries' work), and a query's latency is its own admission-to-
completion span on each rank's clock — which *includes* time the rank
spent serving other queries' slices, exactly what an end-to-end client
would observe.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..bfs import BFSConfig, BFSRankResult, oocbfs_program
from ..bfs.direction import BOTTOM_UP
from .sharedscan import BOTTOM_UP_SCAN, LOG_REPLAY, ScanBoard

__all__ = ["QuerySpec", "QueryOutcome", "RankDrainOutcome", "multiplex_program"]


@dataclass(frozen=True)
class QuerySpec:
    """One submitted relationship query, as queued by ``QueryService.submit``."""

    qid: int
    source: int
    dest: int
    tenant: str = "default"
    #: Virtual-seconds budget measured from admission (``None`` = no limit).
    deadline: float | None = None
    visited: str = "memory"
    max_levels: int = 64
    prefetch: bool = False
    direction_opt: bool | None = None
    direction_schedule: tuple | None = None
    #: Which registered analysis runs this query: ``"bfs"`` (the default
    #: relationship query) or a drain-capable vertex-program analysis
    #: ("pagerank", "components", "ego-net", "triangles").
    analysis: str = "bfs"
    #: Keyword parameters for non-BFS analyses (``None`` = defaults).
    params: dict | None = None


@dataclass
class QueryOutcome:
    """One rank's view of one drained query."""

    result: BFSRankResult
    #: Adjacency entries this query's slices scanned on this rank.
    edges_scanned: int = 0
    #: Drain start -> admission on this rank's clock.
    queue_seconds: float = 0.0
    #: Admission -> completion on this rank's clock (includes time spent
    #: interleaved behind other queries — the client-observed latency).
    latency_seconds: float = 0.0
    #: Streaming-mode snapshot id the query was admitted at (``None`` when
    #: the deployment is not streaming).  Every slice of the query reads
    #: the overlay pinned to this id, whatever lands mid-drain.
    snapshot_seq: int | None = None


@dataclass
class RankDrainOutcome:
    """Everything one back-end rank reports for a whole drain."""

    queries: list = field(default_factory=list)
    rounds: int = 0
    #: Device passes performed for armed shared sweeps on this rank.
    shared_passes: int = 0
    #: Armed sweeps served from a published pass (device passes avoided).
    shared_served: int = 0


def _advance(gen, value=None):
    """Drive one query generator to its next level mark (or completion).

    Comm yields are forwarded verbatim to whatever is driving the
    multiplexer (ultimately the simcluster Scheduler); the level-mark
    sentinels are intercepted here and never escape.  Returns
    ``("mark", payload)`` or ``("done", BFSRankResult)``.
    """
    try:
        item = gen.send(value)
    except StopIteration as stop:
        return ("done", stop.value)
    while not (isinstance(item, tuple) and item and item[0] == "level-mark"):
        reply = yield item
        try:
            item = gen.send(reply)
        except StopIteration as stop:
            return ("done", stop.value)
    return ("mark", item)


def _round_order(active: dict, specs, round_no: int) -> list[int]:
    """Rank-uniform visit order: tenants rotated by round, FIFO within."""
    by_tenant: dict[str, list[int]] = {}
    for qid in sorted(active):
        by_tenant.setdefault(specs[qid].tenant, []).append(qid)
    tenants = sorted(by_tenant)
    k = round_no % len(tenants)
    rotated = tenants[k:] + tenants[:k]
    return [qid for t in rotated for qid in by_tenant[t]]


def _max_merge(a: dict, b: dict) -> dict:
    return {k: max(a[k], b[k]) for k in a}


def multiplex_program(
    ctx,
    db,
    specs,
    cfgs,
    make_visited,
    owner_of,
    max_inflight: int,
    shared_scans: bool,
    make_gen=None,
    streamer=None,
):
    """Back-end rank program draining ``specs`` concurrently; see module doc.

    ``cfgs[qid]`` is the query's :class:`BFSConfig` (``level_marks=True``);
    ``make_visited(ctx, qid)`` builds its per-query visited structure.
    ``make_gen(ctx, qid)``, when given, builds the query's level-marked
    generator instead of the default Algorithm-1 BFS — any generator
    speaking the same mark protocol (vertex programs included) can be
    multiplexed.  ``streamer`` (streaming deployments) is this rank's
    handle on an in-drain ingest feed: ``step(round)`` applies the batches
    due this round to the rank's delta log/overlay, and ``snapshot(round)``
    is the rank-uniform snapshot id new admissions pin — each query slice
    then runs with ``db._stream_snap`` set to its admission snapshot, so a
    query never observes a batch published after it was admitted.  Returns
    a :class:`RankDrainOutcome`.
    """
    if make_gen is None:

        def make_gen(c, qid):
            return oocbfs_program(
                c, db, cfgs[qid], make_visited(c, qid), owner_of=owner_of
            )

    board = ScanBoard() if shared_scans else None
    if board is not None:
        db.scan_board = board
    try:
        n = len(specs)
        outcomes: list[QueryOutcome | None] = [None] * n
        waiting = deque(range(n))
        active: dict[int, dict] = {}
        abort: set[int] = set()
        t0 = ctx.clock.now
        rounds = 0
        any_deadline = any(s.deadline is not None for s in specs)

        def finish(qid, st, result):
            outcomes[qid] = QueryOutcome(
                result=result,
                edges_scanned=st["edges"],
                queue_seconds=st["admitted"] - t0,
                latency_seconds=ctx.clock.now - st["admitted"],
                snapshot_seq=st["snap"],
            )
            del active[qid]
            abort.discard(qid)

        # The round loop outlives the last query if the stream feed still
        # has batches planned for later rounds: the plan (and so the exit
        # round) is static, keeping the extra empty rounds rank-uniform.
        while (
            waiting
            or active
            or (streamer is not None and rounds < streamer.last_round)
        ):
            rounds += 1
            # Streaming: apply the batches due this round to this rank's
            # delta log + overlay before anything is admitted or advanced.
            # The round counter is rank-uniform, so every rank applies (and
            # publishes) the same batches at the same point of the drain.
            if streamer is not None:
                streamer.step(rounds)
            # FIFO admission up to the in-flight cap.  Advancing a fresh
            # generator to its pre-admission mark costs no comm (and a
            # source==dest query completes right here), so admission stays
            # rank-uniform by construction.
            while waiting and len(active) < max_inflight:
                qid = waiting.popleft()
                gen = make_gen(ctx, qid)
                st = {
                    "gen": gen,
                    "admitted": ctx.clock.now,
                    "edges": 0,
                    "next_dir": None,
                    # Snapshot resolution happens HERE, at admission: the
                    # id is pinned for the query's whole life.
                    "snap": streamer.snapshot(rounds) if streamer is not None else None,
                }
                active[qid] = st
                before = db.stats.edges_scanned
                db._stream_snap = st["snap"]
                out = yield from _advance(gen)
                db._stream_snap = None
                st["edges"] += db.stats.edges_scanned - before
                if out[0] == "done":
                    finish(qid, st, out[1])
                else:
                    st["next_dir"] = out[1][3]

            order = _round_order(active, specs, rounds) if active else []
            if board is not None:
                board.begin_round()
                if len(order) >= 2:
                    board.arm(LOG_REPLAY)
                pulls = sum(1 for q in order if active[q]["next_dir"] == BOTTOM_UP)
                if pulls >= 2:
                    board.arm(BOTTOM_UP_SCAN)

            for qid in order:
                st = active[qid]
                before = db.stats.edges_scanned
                # Every slice reads at the query's admission snapshot,
                # whatever batches the feed published since.
                db._stream_snap = st["snap"]
                # The generator is suspended at a level mark; "abort" (a
                # rank-uniform decision from last round's deadline
                # allreduce) makes it wind down with no further comm.
                out = yield from _advance(st["gen"], "abort" if qid in abort else None)
                # A done-mark means the search terminated at this level:
                # the continuation runs only the (comm-free) epilogue.
                while out[0] == "mark" and out[1][2]:
                    st["next_dir"] = out[1][3]
                    out = yield from _advance(st["gen"])
                db._stream_snap = None
                st["edges"] += db.stats.edges_scanned - before
                if out[0] == "done":
                    finish(qid, st, out[1])
                else:
                    st["next_dir"] = out[1][3]

            if any_deadline and active:
                elapsed = {
                    qid: ctx.clock.now - active[qid]["admitted"] for qid in sorted(active)
                }
                merged = yield from ctx.comm.allreduce(elapsed, _max_merge)
                for qid, spent in merged.items():
                    limit = specs[qid].deadline
                    if limit is not None and spent > limit:
                        abort.add(qid)

        return RankDrainOutcome(
            queries=outcomes,
            rounds=rounds,
            shared_passes=board.passes if board is not None else 0,
            shared_served=board.served if board is not None else 0,
        )
    finally:
        if board is not None and getattr(db, "scan_board", None) is board:
            del db.scan_board
