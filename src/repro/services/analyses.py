"""Extension analyses for the Query Service.

The paper positions MSSG as "a flexible and efficient framework to allow
the development and analysis of different graph algorithms" (ch. 6); BFS
is just the demonstration plug-in.  This module supplies further analyses
written directly against the GraphDB/communicator contracts:

* **connected components (dict baseline)** — distributed min-label
  propagation with whole Python dicts shipped through allreduce each
  round.  Registered as both ``components-dict`` and (until the
  vertex-program runtime overrides it) ``components``; kept as the
  naive baseline the ``bench_vertexprog`` ablation measures the
  scatter/gather runtime against;
* **PageRank (dict baseline)** — power iteration with dict allreduces,
  registered as ``pagerank-dict``; the other half of the same ablation;
* **typed BFS** — ontology-constrained search (after Eliassi-Rad & Chow,
  the paper's reference [32]): fringe expansion keeps only neighbors whose
  vertex-type metadata is in an allowed set, implemented directly with
  Listing 3.1's ``getAdjacencyListUsingMetadata(..., OP_EQ)`` filter.

All register automatically via :func:`register_extensions`.
"""

from __future__ import annotations

import numpy as np

from ..bfs.oocbfs import BFSConfig
from ..bfs.paths import path_bfs_program
from ..bfs.visited import InMemoryVisited
from ..graphdb.interface import OP_EQ, GraphDB
from ..util.errors import ConfigError, DeviceFailedError
from ..util.longarray import LongArray
from .query import QueryReport, QueryService

__all__ = [
    "register_extensions",
    "components_program",
    "pagerank_dict_program",
    "typed_bfs_program",
]


def _agreed(analysis: str, results: list):
    """All back-end ranks must report the same outcome; returns it.

    Every extension analysis computes its answer from globally-merged
    (allreduced) state, so per-rank results are identical by construction
    — a divergence means a broken collective or a nondeterministic merge,
    which must fail loudly rather than silently trusting rank 0.
    """
    first = results[0]
    for r in results[1:]:
        if r != first:
            raise ConfigError(f"back-ends disagree on {analysis} outcome")
    return first


def _merge_min_labels(a: dict, b: dict) -> dict:
    out = dict(a)
    for v, label in b.items():
        if label < out.get(v, 1 << 62):
            out[v] = label
    return out


def components_program(ctx, db: GraphDB, max_rounds: int = 200):
    """Rank program: min-label propagation until global quiescence.

    Every rank keeps a replicated label table for all vertices it has seen
    (the same memory trade the paper makes for the BFS visited structure)
    and, each round, proposes ``min(label(v), label(u))`` for every locally
    stored edge ``(v, u)`` whose endpoints' labels disagree.  Proposals are
    merged with a min-allreduce; the round's changed vertices form the next
    frontier.  Works for both vertex- and edge-granularity storage because
    a rank only proposes from adjacency it actually holds.

    This is the *naive* formulation — per-vertex adjacency requests and
    whole-dict collectives.  The vertex-program runtime
    (:mod:`repro.services.vertexprog`) replaces it as the registered
    ``components`` analysis; it stays registered as ``components-dict``
    for the ablation benchmark.
    """
    comm = ctx.comm
    mine = db.local_vertices()
    labels: dict[int, int] = {}

    # Discover the vertex universe (sources + their stored neighbors).
    seed: dict[int, int] = {}
    for v in mine:
        v = int(v)
        seed[v] = min(seed.get(v, v), v)
        for u in db.get_adjacency(v):
            u = int(u)
            seed[u] = min(seed.get(u, u), u)
    merged_seed = yield from comm.allreduce(seed, _merge_min_labels)
    # Copy: in-process collectives deliver one shared object to every rank,
    # and this table is mutated rank-locally below.
    labels = dict(merged_seed)
    frontier = np.array(sorted(labels), dtype=np.int64)

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        proposals: dict[int, int] = {}
        for v in frontier:
            v = int(v)
            lv = labels[v]
            neighbors = db.get_adjacency(v)
            if len(neighbors) == 0:
                continue
            for u in neighbors:
                u = int(u)
                lu = labels[u]
                if lu < lv:
                    lv = lu
                elif lv < lu and lv < proposals.get(u, 1 << 62):
                    proposals[u] = lv
            if lv < labels[v] and lv < proposals.get(v, 1 << 62):
                proposals[v] = lv
        merged = yield from comm.allreduce(proposals, _merge_min_labels)
        changed = [v for v, label in merged.items() if label < labels[v]]
        for v in changed:
            labels[v] = merged[v]
        if not changed:
            break
        frontier = np.array(sorted(changed), dtype=np.int64)

    return labels, rounds


def _merge_add(a: dict, b: dict) -> dict:
    out = dict(a)
    for k, x in b.items():
        out[k] = out.get(k, 0) + x
    return out


def pagerank_dict_program(
    ctx,
    db: GraphDB,
    damping: float = 0.85,
    tol: float = 1e-9,
    max_iters: int = 100,
):
    """Rank program: PageRank by power iteration, dict-allreduce style.

    The naive formulation the vertex-program runtime is measured against:
    one adjacency request per vertex per iteration, contribution tables as
    Python dicts shipped whole through allreduce.  A vertex's degree is
    its globally-summed stored out-degree (partial slices under
    edge-granularity storage add up); a vertex participates iff it has
    stored adjacency.  Converges on the L1 delta like the runtime plug-in.
    Registered as ``pagerank-dict``.
    """
    comm = ctx.comm
    deg_local: dict[int, int] = {}
    for v in db.local_vertices():
        v = int(v)
        deg_local[v] = deg_local.get(v, 0) + len(db.get_adjacency(v))
    degree = yield from comm.allreduce(deg_local, _merge_add)
    degree = {v: d for v, d in degree.items() if d > 0}
    n = len(degree)
    if n == 0:
        return {}, 0, 0.0

    ranks = {v: 1.0 / n for v in degree}
    iters = 0
    delta = float("inf")
    while iters < max_iters:
        iters += 1
        contrib: dict[int, float] = {}
        for v in db.local_vertices():
            v = int(v)
            if v not in ranks:
                continue
            share = ranks[v] / degree[v]
            for u in db.get_adjacency(v):
                u = int(u)
                contrib[u] = contrib.get(u, 0.0) + share
        merged = yield from comm.allreduce(contrib, _merge_add)
        new = {
            v: (1.0 - damping) / n + damping * merged.get(v, 0.0) for v in ranks
        }
        delta = sum(abs(new[v] - ranks[v]) for v in ranks)
        ranks = new
        if delta < tol:
            break
    return ranks, iters, delta


def typed_bfs_program(
    ctx,
    db: GraphDB,
    source: int,
    dest: int,
    allowed_codes,
    max_levels: int = 64,
    replication: int = 1,
):
    """Rank program: BFS that may only traverse allowed vertex types.

    Vertex types must already be loaded as per-vertex metadata (integer
    type codes) on every back-end; expansion then unions one
    ``OP_EQ``-filtered adjacency fetch per allowed code — exactly the
    higher-level operation Listing 3.1 was designed to make cheap.
    Returns ``(level, partial)`` with level -1 when unreachable.

    Expansion is broadcast-style (every rank expands the full fringe
    against its own storage), so a mid-query device death is covered for
    free whenever each partition has another alive holder: the survivors'
    union already contains the dead rank's neighbors.  The dead rank
    keeps posting (empty) shards so collectives stay rank-uniform;
    ``partial`` flags the runs where coverage cannot be guaranteed
    (cumulative deaths reaching the replication factor).
    """
    comm = ctx.comm
    source, dest = int(source), int(dest)
    if source == dest:
        # The trivial relationship: zero hops, decided before any
        # expansion or communication (rank-uniform by construction).
        return 0, False
    visited: set[int] = {source}
    fringe = np.array([source], dtype=np.int64)
    levcnt = 0
    allowed = [int(c) for c in allowed_codes]
    self_dead = False
    dead: set[int] = set()
    partial = False

    while True:
        levcnt += 1
        neighbors = np.empty(0, dtype=np.int64)
        if not self_dead:
            out = LongArray()
            try:
                for v in fringe:
                    for code in allowed:
                        db.get_adjacency_list_using_metadata(int(v), out, code, OP_EQ)
                neighbors = out.to_numpy()
            except DeviceFailedError:
                self_dead = True
                neighbors = np.empty(0, dtype=np.int64)
        found_here = bool(len(neighbors)) and bool(np.any(neighbors == dest))
        new = np.unique(neighbors) if len(neighbors) else neighbors
        new = np.array([u for u in new if int(u) not in visited], dtype=np.int64)
        gathered = yield from comm.allgather((self_dead, new))
        for q, (is_dead, _) in enumerate(gathered):
            if is_dead:
                dead.add(q)
        if len(dead) >= replication:
            # Conservative: this many deaths may have exhausted some
            # partition's holder chain, so the union may be incomplete.
            partial = True
        shards = [np.asarray(g, dtype=np.int64) for _, g in gathered if len(g)]
        incoming = (
            np.unique(np.concatenate(shards)) if shards else np.empty(0, dtype=np.int64)
        )
        fresh = np.array([u for u in incoming if int(u) not in visited], dtype=np.int64)
        visited.update(int(u) for u in fresh)
        fringe = fresh
        found_any, total = yield from comm.allreduce(
            (found_here, len(fresh)), lambda a, b: (a[0] or b[0], a[1] + b[1])
        )
        if found_any:
            return levcnt, partial
        if total == 0 or levcnt >= max_levels:
            return -1, partial


def register_extensions(service: QueryService) -> None:
    """Register the extension analyses on a query service."""

    def _edges_scanned():
        return sum(db.stats.edges_scanned for db in service.dbs)

    def components(max_rounds: int = 200, return_labels: bool = False) -> QueryReport:
        def make(q):
            def program(ctx):
                result = yield from components_program(ctx, service.dbs[q], max_rounds)
                return result

            return program

        edges_before = _edges_scanned()
        results = service._run_on_backends(make)
        labels, _ = _agreed("components", results)
        counts: dict[int, int] = {}
        for label in labels.values():
            counts[label] = counts.get(label, 0) + 1
        payload = {
            "num_components": len(counts),
            "sizes": sorted(counts.values(), reverse=True),
        }
        # The full per-vertex table is an unbounded payload at scale
        # (every vertex id in the graph); callers opt in explicitly.
        if return_labels:
            payload["labels"] = labels
        return QueryReport(
            analysis="components",
            seconds=service.cluster.makespan,
            result=payload,
            edges_scanned=_edges_scanned() - edges_before,
            levels=max(r[1] for r in results),
        )

    def pagerank_dict(
        damping: float = 0.85, tol: float = 1e-9, max_iters: int = 100
    ) -> QueryReport:
        def make(q):
            def program(ctx):
                result = yield from pagerank_dict_program(
                    ctx, service.dbs[q], damping, tol, max_iters
                )
                return result

            return program

        edges_before = _edges_scanned()
        results = service._run_on_backends(make)
        ranks, iters, delta = _agreed("pagerank-dict", results)
        order = sorted(ranks, key=lambda v: (-ranks[v], v))
        return QueryReport(
            analysis="pagerank-dict",
            seconds=service.cluster.makespan,
            result={
                "num_vertices": len(ranks),
                "iterations": iters,
                "delta": delta,
                "top": [(int(v), float(ranks[v])) for v in order[:20]],
            },
            edges_scanned=_edges_scanned() - edges_before,
            levels=iters,
        )

    def load_vertex_types(type_codes: dict) -> QueryReport:
        """Replicate the vertex-type metadata table onto every back-end."""

        def make(q):
            def program(ctx):
                db = service.dbs[q]
                for v, code in type_codes.items():
                    db.set_metadata(int(v), int(code))
                yield from ctx.comm.barrier()
                return len(type_codes)

            return program

        results = service._run_on_backends(make)
        return QueryReport(
            analysis="load-vertex-types",
            seconds=service.cluster.makespan,
            result=_agreed("load-vertex-types", results),
        )

    def typed_bfs(source, dest, allowed_codes, max_levels: int = 64) -> QueryReport:
        def make(q):
            def program(ctx):
                outcome = yield from typed_bfs_program(
                    ctx,
                    service.dbs[q],
                    int(source),
                    int(dest),
                    allowed_codes,
                    max_levels,
                    replication=service.replication,
                )
                return outcome

            return program

        results = service._run_on_backends(make)
        level, partial = _agreed("typed-bfs", results)
        return QueryReport(
            analysis="typed-bfs",
            seconds=service.cluster.makespan,
            result=None if level < 0 else level,
            partial=partial,
        )

    def path(source, dest, max_levels: int = 64) -> QueryReport:
        """Relationship chain: the actual shortest vertex path, not just
        its length (the "show me the connection" query of the paper's
        homeland-security motivation)."""
        cfg = BFSConfig(
            source=int(source),
            dest=int(dest),
            owner_known=service.declusterer.owner_known,
            max_levels=max_levels,
        )
        owner_of = (
            service.declusterer.owner_of if service.declusterer.owner_known else None
        )

        def make(q):
            def program(ctx):
                result = yield from path_bfs_program(
                    ctx, service.dbs[q], cfg, InMemoryVisited(), owner_of=owner_of
                )
                return result

            return program

        results = service._run_on_backends(make)
        return QueryReport(
            analysis="path",
            seconds=service.cluster.makespan,
            result=_agreed("path", results),
        )

    service.register("components", components)
    service.register("components-dict", components)
    service.register("pagerank-dict", pagerank_dict)
    service.register("load-vertex-types", load_vertex_types)
    service.register("typed-bfs", typed_bfs)
    service.register("path", path)
