"""Extension analyses for the Query Service.

The paper positions MSSG as "a flexible and efficient framework to allow
the development and analysis of different graph algorithms" (ch. 6); BFS
is just the demonstration plug-in.  This module supplies two further
analyses written against the same GraphDB/communicator contracts:

* **connected components** — distributed min-label propagation over the
  stored graph, working under both vertex- and edge-granularity
  declustering (each rank proposes label updates from its local adjacency;
  proposals merge with an allreduce each round);
* **typed BFS** — ontology-constrained search (after Eliassi-Rad & Chow,
  the paper's reference [32]): fringe expansion keeps only neighbors whose
  vertex-type metadata is in an allowed set, implemented directly with
  Listing 3.1's ``getAdjacencyListUsingMetadata(..., OP_EQ)`` filter.

Both register automatically via :meth:`QueryService.register_extensions`.
"""

from __future__ import annotations

import numpy as np

from ..bfs.oocbfs import BFSConfig
from ..bfs.paths import path_bfs_program
from ..bfs.visited import InMemoryVisited
from ..graphdb.interface import OP_EQ, GraphDB
from ..util.longarray import LongArray
from .query import QueryReport, QueryService

__all__ = ["register_extensions", "components_program", "typed_bfs_program"]


def _merge_min_labels(a: dict, b: dict) -> dict:
    out = dict(a)
    for v, label in b.items():
        if label < out.get(v, 1 << 62):
            out[v] = label
    return out


def components_program(ctx, db: GraphDB, max_rounds: int = 200):
    """Rank program: min-label propagation until global quiescence.

    Every rank keeps a replicated label table for all vertices it has seen
    (the same memory trade the paper makes for the BFS visited structure)
    and, each round, proposes ``min(label(v), label(u))`` for every locally
    stored edge ``(v, u)`` whose endpoints' labels disagree.  Proposals are
    merged with a min-allreduce; the round's changed vertices form the next
    frontier.  Works for both vertex- and edge-granularity storage because
    a rank only proposes from adjacency it actually holds.
    """
    comm = ctx.comm
    mine = db.local_vertices()
    labels: dict[int, int] = {}

    # Discover the vertex universe (sources + their stored neighbors).
    seed: dict[int, int] = {}
    for v in mine:
        v = int(v)
        seed[v] = min(seed.get(v, v), v)
        for u in db.get_adjacency(v):
            u = int(u)
            seed[u] = min(seed.get(u, u), u)
    merged_seed = yield from comm.allreduce(seed, _merge_min_labels)
    # Copy: in-process collectives deliver one shared object to every rank,
    # and this table is mutated rank-locally below.
    labels = dict(merged_seed)
    frontier = np.array(sorted(labels), dtype=np.int64)

    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        proposals: dict[int, int] = {}
        for v in frontier:
            v = int(v)
            lv = labels[v]
            neighbors = db.get_adjacency(v)
            if len(neighbors) == 0:
                continue
            for u in neighbors:
                u = int(u)
                lu = labels[u]
                if lu < lv:
                    lv = lu
                elif lv < lu and lv < proposals.get(u, 1 << 62):
                    proposals[u] = lv
            if lv < labels[v] and lv < proposals.get(v, 1 << 62):
                proposals[v] = lv
        merged = yield from comm.allreduce(proposals, _merge_min_labels)
        changed = [v for v, label in merged.items() if label < labels[v]]
        for v in changed:
            labels[v] = merged[v]
        if not changed:
            break
        frontier = np.array(sorted(changed), dtype=np.int64)

    return labels, rounds


def typed_bfs_program(ctx, db: GraphDB, source: int, dest: int, allowed_codes, max_levels: int = 64):
    """Rank program: BFS that may only traverse allowed vertex types.

    Vertex types must already be loaded as per-vertex metadata (integer
    type codes) on every back-end; expansion then unions one
    ``OP_EQ``-filtered adjacency fetch per allowed code — exactly the
    higher-level operation Listing 3.1 was designed to make cheap.
    Returns the found level or -1.
    """
    comm = ctx.comm
    size = comm.size
    visited: set[int] = {int(source)}
    fringe = np.array([int(source)], dtype=np.int64)
    levcnt = 0
    allowed = [int(c) for c in allowed_codes]

    while True:
        levcnt += 1
        out = LongArray()
        for v in fringe:
            for code in allowed:
                db.get_adjacency_list_using_metadata(int(v), out, code, OP_EQ)
        neighbors = out.to_numpy()
        found_here = bool(len(neighbors)) and bool(np.any(neighbors == dest))
        new = np.unique(neighbors) if len(neighbors) else neighbors
        new = np.array([u for u in new if int(u) not in visited], dtype=np.int64)
        gathered = yield from comm.allgather(new)
        incoming = (
            np.unique(np.concatenate([np.asarray(g, dtype=np.int64) for g in gathered]))
            if any(len(g) for g in gathered)
            else np.empty(0, dtype=np.int64)
        )
        fresh = np.array([u for u in incoming if int(u) not in visited], dtype=np.int64)
        visited.update(int(u) for u in fresh)
        fringe = fresh
        found_any, total = yield from comm.allreduce(
            (found_here, len(fresh)), lambda a, b: (a[0] or b[0], a[1] + b[1])
        )
        if found_any:
            return levcnt
        if total == 0 or levcnt >= max_levels:
            return -1


def register_extensions(service: QueryService) -> None:
    """Register the extension analyses on a query service."""

    def components(max_rounds: int = 200) -> QueryReport:
        def make(q):
            def program(ctx):
                result = yield from components_program(ctx, service.dbs[q], max_rounds)
                return result

            return program

        results = service._run_on_backends(make)
        labels, _ = results[0]
        counts: dict[int, int] = {}
        for label in labels.values():
            counts[label] = counts.get(label, 0) + 1
        return QueryReport(
            analysis="components",
            seconds=service.cluster.makespan,
            result={
                "num_components": len(counts),
                "sizes": sorted(counts.values(), reverse=True),
                "labels": labels,
            },
            levels=max(r[1] for r in results),
        )

    def load_vertex_types(type_codes: dict) -> QueryReport:
        """Replicate the vertex-type metadata table onto every back-end."""

        def make(q):
            def program(ctx):
                db = service.dbs[q]
                for v, code in type_codes.items():
                    db.set_metadata(int(v), int(code))
                yield from ctx.comm.barrier()
                return len(type_codes)

            return program

        results = service._run_on_backends(make)
        return QueryReport(
            analysis="load-vertex-types",
            seconds=service.cluster.makespan,
            result=results[0],
        )

    def typed_bfs(source, dest, allowed_codes, max_levels: int = 64) -> QueryReport:
        def make(q):
            def program(ctx):
                level = yield from typed_bfs_program(
                    ctx, service.dbs[q], int(source), int(dest), allowed_codes, max_levels
                )
                return level

            return program

        results = service._run_on_backends(make)
        level = results[0]
        return QueryReport(
            analysis="typed-bfs",
            seconds=service.cluster.makespan,
            result=None if level < 0 else level,
        )

    def path(source, dest, max_levels: int = 64) -> QueryReport:
        """Relationship chain: the actual shortest vertex path, not just
        its length (the "show me the connection" query of the paper's
        homeland-security motivation)."""
        cfg = BFSConfig(
            source=int(source),
            dest=int(dest),
            owner_known=service.declusterer.owner_known,
            max_levels=max_levels,
        )
        owner_of = (
            service.declusterer.owner_of if service.declusterer.owner_known else None
        )

        def make(q):
            def program(ctx):
                result = yield from path_bfs_program(
                    ctx, service.dbs[q], cfg, InMemoryVisited(), owner_of=owner_of
                )
                return result

            return program

        results = service._run_on_backends(make)
        assert all(r == results[0] for r in results), "ranks disagree on the path"
        return QueryReport(
            analysis="path", seconds=service.cluster.makespan, result=results[0]
        )

    service.register("components", components)
    service.register("load-vertex-types", load_vertex_types)
    service.register("typed-bfs", typed_bfs)
    service.register("path", path)
