"""Streaming ingest: delta overlays, snapshot publish, and compaction.

The streaming layer (DESIGN §12) lets an MSSG deployment absorb edge
batches continuously while queries keep running against consistent data:

* every back-end carries a crash-safe :class:`~repro.storage.deltalog.DeltaLog`
  plus an in-memory :class:`DeltaOverlay` decoded from it — the adjacency
  the store has accepted since its base files were last compacted;
* a *published snapshot id* (the last cluster-widely committed batch seq)
  gates visibility: queries resolve the id once at admission and every
  adjacency read merges base + only the overlay batches ``<=`` that id, so
  an in-flight query never observes a half-applied batch;
* :meth:`StreamingState.compact` folds the overlay into the base store
  (grDB sub-blocks / StreamDB log records) under the delta log's two-phase
  intent protocol, so a crash at any point either keeps the deltas or
  adopts the fold — never both, never neither.

Batches route through the *same* ingestion pipeline as a batch ingest
(same declusterer, same windows, same fault accounting): the DataCutter
writer filters are simply handed :class:`_DeltaSink` objects that append
to the delta logs instead of the base stores.  A streamed prefix is
therefore partitioned identically to a from-scratch batch ingest of that
prefix — the invariant the property tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..storage.deltalog import DeltaLog
from ..util.errors import ConfigError, DeviceFailedError

__all__ = [
    "CompactReport",
    "DeltaOverlay",
    "OverlayView",
    "StreamFeed",
    "StreamingState",
    "base_commit_token",
]


def base_commit_token(db) -> int | None:
    """The base store's durable commit counter, or ``None`` if it has none.

    This is the value the delta log's compaction intent records: grDB's
    WAL sequence advances exactly when a journaled flush commits, and
    StreamDB's commit-record seqno advances exactly when a flush's commit
    slot lands — both all-or-nothing, so "did the crashed compaction's
    flush commit?" reduces to an integer comparison at recovery.  The
    other backends (and non-checksummed deployments) have no such counter;
    their interrupted compactions conservatively abort and replay the
    deltas (same crash-story scope as the PR 5 durability layer).
    """
    storage = getattr(db, "storage", None)
    if storage is not None and getattr(storage, "integrity", None) is not None:
        return int(storage._wal_seq)
    if getattr(db, "meta_device", None) is not None and hasattr(db, "_seq"):
        return int(db._seq)
    return None


class _OverlayBatch:
    """One committed stream batch, indexed for per-vertex adjacency lookup."""

    def __init__(self, seq: int, edges: np.ndarray):
        self.seq = seq
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if len(edges):
            order = np.lexsort((edges[:, 1], edges[:, 0]))
            edges = edges[order]
        self.edges = edges
        self.srcs, counts = (
            np.unique(edges[:, 0], return_counts=True)
            if len(edges)
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        self.indptr = np.concatenate([[0], np.cumsum(counts)])

    def adjacency(self, vertex: int) -> np.ndarray:
        i = int(np.searchsorted(self.srcs, vertex))
        if i == len(self.srcs) or self.srcs[i] != vertex:
            return self.edges[0:0, 1]
        return self.edges[self.indptr[i] : self.indptr[i + 1], 1]

    def degrees(self, vs: np.ndarray) -> np.ndarray:
        if not len(self.srcs):
            return np.zeros(len(vs), dtype=np.int64)
        idx = np.searchsorted(self.srcs, vs)
        idx = np.minimum(idx, len(self.srcs) - 1)
        hit = self.srcs[idx] == vs
        out = np.zeros(len(vs), dtype=np.int64)
        out[hit] = (self.indptr[idx + 1] - self.indptr[idx])[hit]
        return out


class OverlayView:
    """The overlay batches visible to one query's admission snapshot."""

    def __init__(self, batches: list[_OverlayBatch]):
        self.batches = batches

    def adjacency(self, vertex: int) -> np.ndarray:
        parts = [b.adjacency(vertex) for b in self.batches]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def degrees(self, vs: np.ndarray) -> np.ndarray:
        out = np.zeros(len(vs), dtype=np.int64)
        for b in self.batches:
            out += b.degrees(vs)
        return out

    def vertices(self) -> np.ndarray:
        parts = [b.srcs for b in self.batches if len(b.srcs)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(parts))

    def fringe(self, vs) -> np.ndarray:
        """Concatenated overlay adjacency of every fringe vertex, in fringe
        order (matching the default per-vertex ``expand_fringe`` loop)."""
        parts = [self.adjacency(int(v)) for v in vs]
        parts = [p for p in parts if len(p)]
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)


class DeltaOverlay:
    """In-memory image of one back-end's delta log, snapshot-filterable.

    Batches are held individually (not merged) so a query admitted at
    snapshot ``s`` can read exactly the batches with ``seq <= s`` while a
    later batch is already being appended — MVCC at batch granularity.
    """

    def __init__(self):
        self.batches: list[_OverlayBatch] = []
        #: Highest cluster-widely published batch seq; the default
        #: visibility horizon for reads with no pinned snapshot.
        self.published = 0

    def append(self, seq: int, edges: np.ndarray) -> None:
        self.batches.append(_OverlayBatch(seq, edges))

    def drop_through(self, seq: int) -> None:
        """Forget batches folded into the base store (``<= seq``)."""
        self.batches = [b for b in self.batches if b.seq > seq]

    def view(self, snap: int | None) -> OverlayView | None:
        """The read view at snapshot ``snap`` (``None`` = published horizon).

        Returns ``None`` when no overlay batch is visible — the common
        compacted/steady case, which keeps the base read path zero-cost.
        """
        horizon = self.published if snap is None else snap
        visible = [b for b in self.batches if b.seq <= horizon and len(b.edges)]
        return OverlayView(visible) if visible else None


class _DeltaSink:
    """Duck-typed GraphDB writer target appending to one delta log.

    Implements exactly the surface the ingestion writer filter touches
    (``store_edges`` / ``finalize_ingest`` / ``flush``), so the whole
    DataCutter pipeline — windows, declustering, death announcements,
    rerouting, loss accounting — runs unmodified.  The batch becomes
    durable at :meth:`flush` time: one DATA+COMMIT append per back-end,
    all-or-nothing under a crash.
    """

    def __init__(self, state: "StreamingState", q: int, seq: int):
        self._state = state
        self._q = q
        self._seq = seq
        self._chunks: list[np.ndarray] = []
        self.name = f"delta:{state.mssg.dbs[q].name}"

    def store_edges(self, edges) -> None:
        if self._state.logs[self._q] is None:
            raise DeviceFailedError(
                f"back-end {self._q}'s delta log device is dead"
            )
        self._chunks.append(np.asarray(edges, dtype=np.int64).reshape(-1, 2))

    def finalize_ingest(self) -> None:
        pass

    def flush(self) -> None:
        log = self._state.logs[self._q]
        if log is None:
            raise DeviceFailedError(
                f"back-end {self._q}'s delta log device is dead"
            )
        edges = (
            np.vstack(self._chunks)
            if self._chunks
            else np.zeros((0, 2), dtype=np.int64)
        )
        self._chunks = []
        log.append(self._seq, edges)
        # Overlay only after the durable append succeeded: a torn append
        # must leave RAM and disk agreeing that the batch never happened.
        overlay = self._state.mssg.dbs[self._q]._stream_overlay
        if overlay is not None:
            overlay.append(self._seq, edges)


@dataclass
class CompactReport:
    """Outcome of one :meth:`StreamingState.compact` pass."""

    seconds: float  # virtual makespan of the compaction run
    #: Stream batches folded into base stores (summed over back-ends).
    batches_folded: int
    #: Directed adjacency entries folded (summed over back-ends).
    entries_folded: int
    #: Back-ends whose device died mid-compaction (their delta logs keep
    #: the batches; recovery resolves the interrupted intent at reopen).
    failed_backends: tuple[int, ...] = ()


class StreamFeed:
    """A deterministic in-drain ingest plan: batches applied mid-drain.

    Built by :meth:`StreamingState.make_feed` before a ``query_many``
    drain.  Each batch is pre-routed through the declusterer (identical
    partitioning to a standalone ingest of the same batch) and assigned a
    scheduling round; at the top of that round every back-end rank appends
    its shard to its delta log + overlay, and the published snapshot
    advances.  Both the apply point and the admission snapshot are derived
    from the rank-uniform round counter, so every rank agrees on exactly
    which batches any query can see — no extra collectives.
    """

    def __init__(self, state: "StreamingState", batches, every: int = 1):
        if every < 1:
            raise ConfigError(f"stream_every must be >= 1, got {every}")
        self.state = state
        self.base_published = state.published
        mssg = state.mssg
        self.replication = getattr(mssg.declusterer, "replication", 1)
        #: (at_round, seq, per-back-end shard) — at_round starts at 1.
        self.plan: list[tuple[int, int, list[np.ndarray]]] = []
        #: Undirected edge count of each planned batch (report accounting).
        self.batch_sizes: list[int] = []
        for i, edges in enumerate(batches):
            seq = self.base_published + 1 + i
            edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
            self.plan.append((1 + i * every, seq, state.route(edges)))
            self.batch_sizes.append(len(edges))
        P = len(mssg.dbs)
        self._applied = [[False] * P for _ in self.plan]
        #: Back-ends whose delta append failed mid-drain.
        self.failed: set[int] = set()
        #: Entry counts applied per back-end (for the ingest report).
        self.applied_entries = [0] * P

    def snapshot(self, round_no: int) -> int:
        """The rank-uniform admission snapshot for ``round_no``."""
        return self.base_published + sum(
            1 for at, _, _ in self.plan if at <= round_no
        )

    def step(self, q: int, round_no: int) -> None:
        """Apply every batch due by ``round_no`` to back-end ``q``."""
        state = self.state
        for i, (at, seq, parts) in enumerate(self.plan):
            if at > round_no or self._applied[i][q]:
                continue
            self._applied[i][q] = True
            log = state.logs[q]
            overlay = state.mssg.dbs[q]._stream_overlay
            try:
                if log is None:
                    raise DeviceFailedError(
                        f"back-end {q}'s delta log device is dead"
                    )
                log.append(seq, parts[q])
                if overlay is not None:
                    overlay.append(seq, parts[q])
                self.applied_entries[q] += len(parts[q])
            except DeviceFailedError:
                self.failed.add(q)
            # Publish once the whole cluster applied the batch; visibility
            # is still gated per-rank by snapshot(), which flips at the
            # same round on every rank.
            if all(self._applied[i]):
                state.published = seq
                for db in state.mssg.dbs:
                    if db._stream_overlay is not None:
                        db._stream_overlay.published = seq

    @property
    def batches_applied(self) -> int:
        return sum(1 for flags in self._applied if all(flags))

    @property
    def last_round(self) -> int:
        """Round by which the whole plan has been applied (0 if empty).

        The multiplexer keeps its round loop alive through this round even
        after the last query completes, so every planned batch lands — a
        short drain never silently drops the tail of the feed.
        """
        return max((at for at, _, _ in self.plan), default=0)


class _RankFeed:
    """One back-end rank's handle on a shared :class:`StreamFeed`."""

    def __init__(self, feed: StreamFeed, q: int):
        self._feed = feed
        self._q = q

    def step(self, round_no: int) -> None:
        self._feed.step(self._q, round_no)

    def snapshot(self, round_no: int) -> int:
        return self._feed.snapshot(round_no)

    @property
    def last_round(self) -> int:
        return self._feed.last_round


class StreamingState:
    """Per-deployment streaming machinery: logs, overlays, publish state.

    Construction doubles as crash recovery: each back-end's delta log is
    opened (running its torn-tail truncation), any interrupted compaction
    intent is settled against the base store's recovered commit token, and
    the surviving batches are decoded into overlays.  The published
    snapshot is the max committed seq over openable logs — a crash
    mid-batch leaves the committers ahead and the victims lagging, and the
    lagging back-ends are recorded dead for query routing (their shards —
    base and delta — fail over to replica holders) when replication
    permits.
    """

    def __init__(self, mssg):
        self.mssg = mssg
        cfg = mssg.config
        F = cfg.num_frontends
        self.logs: list[DeltaLog | None] = []
        hi_vertex = -1
        for q, db in enumerate(mssg.dbs):
            node = mssg.cluster.nodes[F + q]
            try:
                log = DeltaLog(node.disk("deltalog"))
            except DeviceFailedError:
                log = None
            if log is not None and log.intent is not None:
                log.resolve_intent(base_commit_token(db))
            self.logs.append(log)
            overlay = DeltaOverlay()
            db._stream_overlay = overlay
            if log is not None:
                for seq, edges in log.pending:
                    overlay.append(seq, edges)
                    if len(edges):
                        hi_vertex = max(hi_vertex, int(edges.max()))
        #: Last cluster-widely published batch seq (queries admit at this).
        self.published = max(
            (log.committed for log in self.logs if log is not None), default=0
        )
        for db in mssg.dbs:
            db._stream_overlay.published = self.published
        #: Back-ends missing published batches (dead log device, or a crash
        #: landed between their commit and their peers').  Their answers
        #: would be stale, so queries treat them as dead and fail over.
        self.lagging = tuple(
            q
            for q, log in enumerate(self.logs)
            if log is None or log.committed < self.published
        )
        if self.lagging and cfg.replication > 1:
            mssg.queries.known_dead |= set(self.lagging)
            mssg.queries.fault_tolerant = True
        if hi_vertex >= 0:
            mssg.queries.num_vertices = max(
                mssg.queries.num_vertices or 0, hi_vertex + 1
            )

    # -- ingest ---------------------------------------------------------------

    def route(self, edges: np.ndarray) -> list[np.ndarray]:
        """Partition one batch exactly as the ingestion pipeline would.

        One window per batch keeps this a planning-time helper (used by the
        in-drain :class:`StreamFeed`); window-size effects do not change
        vertex-granularity routing, which is what streaming supports.
        """
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        decl = self.mssg.declusterer
        decl.reset()
        decl.prepare(edges, self.mssg.config.window_size)
        parts, _, _ = decl.assign_routed(edges, frozenset(), 0)
        return [np.asarray(p, dtype=np.int64).reshape(-1, 2) for p in parts]

    def ingest_batch(self, edges: np.ndarray):
        """Append one batch through the full ingestion pipeline.

        The batch is durable (delta logs) and published when this returns;
        it is *not* yet folded into the base stores — :meth:`compact` does
        that.  Returns the batch's :class:`IngestReport` (``batches=1``).
        """
        seq = self.published + 1
        sinks = [_DeltaSink(self, q, seq) for q in range(len(self.mssg.dbs))]
        report = self.mssg.ingestion.ingest(edges, stores=sinks)
        self.published = seq
        for db in self.mssg.dbs:
            if db._stream_overlay is not None:
                db._stream_overlay.published = seq
        return report

    def make_feed(self, batches, every: int = 1) -> StreamFeed:
        return StreamFeed(self, list(batches), every=every)

    def for_rank(self, feed: StreamFeed, q: int) -> _RankFeed:
        return _RankFeed(feed, q)

    # -- compaction -----------------------------------------------------------

    def compact(self) -> CompactReport:
        """Fold every back-end's pending deltas into its base store.

        Runs as a cluster program (device writes charged on each back-end
        node's clock, back-ends in parallel) under the delta log's
        two-phase intent: intent header -> one atomic base flush (grDB
        WAL-journaled / StreamDB commit-record) -> publish header + log
        reset.  A device death mid-fold leaves the intent for recovery to
        settle; the surviving deltas replay into the overlay at reopen
        either way, so no committed batch is ever lost *or* doubled on a
        token-bearing backend.
        """
        mssg = self.mssg
        F = mssg.config.num_frontends
        dbs = mssg.dbs
        logs = self.logs
        P = len(dbs)

        def program(ctx):
            q = ctx.rank - F
            if q < 0 or q >= P:
                return None
            log = logs[q]
            db = dbs[q]
            overlay = db._stream_overlay
            if log is None or overlay is None or not overlay.batches:
                return (0, 0, False)
            folded = [b for b in overlay.batches if b.seq <= log.committed]
            if not folded:
                return (0, 0, False)
            try:
                target = log.begin_compaction(base_commit_token(db))
                stacks = [b.edges for b in folded if len(b.edges)]
                entries = 0
                if stacks:
                    edges = np.vstack(stacks)
                    entries = len(edges)
                    # One store+flush = one journaled base commit; the
                    # intent token decides its fate after a crash.
                    db.store_edges(edges)
                    db.finalize_ingest()
                    db.flush()
                log.finish_compaction(target)
                overlay.drop_through(target)
                return (len(folded), entries, False)
            except DeviceFailedError:
                return (0, 0, True)
            yield  # pragma: no cover - generator gate, never reached

        results = mssg.cluster.run(program)
        backend = [r for r in results if r is not None]
        return CompactReport(
            seconds=mssg.cluster.makespan,
            batches_folded=sum(b for b, _, _ in backend),
            entries_folded=sum(e for _, e, _ in backend),
            failed_backends=tuple(
                q for q, (_, _, dead) in enumerate(backend) if dead
            ),
        )
