"""Scatter/gather vertex-program runtime for the Query Service.

The paper frames the Query Service as a registry of "different graph
algorithms" (ch. 6), but until now BFS was the only analysis built on the
framework's real machinery — batched adjacency I/O, replication-aware
failover, the concurrent multiplexer.  This module supplies the missing
abstraction: a level-synchronous scatter/gather vertex-program runtime in
the FlashGraph/Graphyti programming model (PAPERS.md), so whole families
of analyses inherit that machinery instead of re-implementing it with
Python dicts shipped through allreduces.

Programming model
-----------------

A :class:`VertexProgram` holds *replicated dense state* — one numpy array
slot per vertex id, identical on every rank, the same memory trade the
BFS visited structure makes — and advances in supersteps over an
active-vertex :class:`~repro.util.bitset.Bitset` frontier:

* **gather/scatter** — each rank walks the adjacency of the active
  vertices it is *responsible* for (the first surviving holder of each
  vertex's replica chain, so replicated partitions are never
  double-counted) and emits typed messages ``(dst, src, value)`` along
  the stored edges;
* **combine** — messages are numpy-typed triplet arrays, merged with a
  vectorized combiner (``add``/``min``/``max``) into one dense value
  array per superstep.  Combination is *canonical*: all posted triplets
  are sorted by ``(dst, src)`` before reduction, so the result is
  bit-identical regardless of each backend's storage order, of scan
  interleaving under the concurrent multiplexer, and of which replica
  served a shard after a failover;
* **apply** — every rank applies the combined messages to its replicated
  state identically, producing the next frontier with no further
  communication (one collective per superstep in the healthy case).

Access plans, inherited from the BFS work:

* a **sparse** frontier is fetched in batch: programs that need
  per-source values walk ``GraphDB.scan_adjacency(candidates,
  order="storage")`` (grDB resolves the candidates' chains through the
  coalescing block planner; BerkeleyDB walks its leaf chain; MySQL plans
  range statements), and source-independent programs (``needs_source =
  False``) go through :func:`~repro.bfs.failover.try_expand` /
  ``expand_fringe`` — the exact batched path of top-down BFS;
* a **dense** frontier switches to one storage-order sweep per rank —
  the bottom-up BFS plan — through
  :func:`repro.bfs.direction._adjacency_source`, which also makes the
  sweep *shareable*: under ``query_many`` the multiplexer arms the
  :class:`~repro.services.sharedscan.ScanBoard` and concurrent analytics
  and bottom-up BFS levels are all served from one device pass.  The
  switch is the frontier-count half of the direction controller's
  hysteresis: sweep when ``|frontier| * dense_beta >= num_vertices``.

Failover mirrors ``bottom_up_level``: each superstep's message exchange
doubles as the death announcement; when a device dies mid-scan its
partial accumulation is discarded and bounded retry rounds re-scan the
orphaned responsibility set on the next surviving chain members.  Ranks
seeded via ``FaultTolerance.known_dead`` (a rebalanced cluster) are
routed around from superstep one and cost zero extra rounds.

Four plug-ins ship on the runtime — PageRank (iterate until
convergence), weakly-connected components, k-hop ego-net extraction, and
triangle/wedge counting — registered on every
:class:`~repro.services.query.QueryService` by
:func:`register_vertex_programs`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..bfs.direction import BOTTOM_UP, _adjacency_source
from ..bfs.failover import FaultTolerance, FTState, route_to_replicas, try_expand
from ..util.bitset import Bitset
from ..util.errors import ConfigError, CorruptBlockError, DeviceFailedError
from ..util.longarray import LongArray

__all__ = [
    "VertexProgram",
    "VPConfig",
    "VPRankResult",
    "vertexprog_program",
    "PageRankProgram",
    "ComponentsProgram",
    "EgoNetProgram",
    "triangle_count_program",
    "register_vertex_programs",
    "make_vp_generator",
    "vp_report",
    "VP_ANALYSES",
]

_EMPTY = np.empty(0, dtype=np.int64)

#: Sweep when ``|frontier| * DENSE_BETA >= num_vertices`` — the same shape
#: as the direction controller's switch-back threshold (Beamer's ``n/beta``
#: with a smaller beta: a sweep only needs ~1/4 of vertices active to beat
#: per-vertex random fetches, because it pays no per-vertex seek).
DENSE_BETA = 4.0

SPARSE = "sparse"
DENSE = "dense"

_COMBINERS = {
    "add": (np.add, 0.0),
    "min": (np.minimum, np.inf),
    "max": (np.maximum, -np.inf),
}


@dataclass(frozen=True)
class VPConfig:
    """One vertex-program run (the analytics analogue of ``BFSConfig``)."""

    #: Vertex-id space size (ids in ``[0, num_vertices)``); sizes the state
    #: arrays and the frontier bitset.
    num_vertices: int
    #: Vertex-granularity declustering with a global owner map?  Without
    #: one (edge round-robin) every rank scans its own local slice of each
    #: active vertex's adjacency — correct for additive and min/max
    #: combiners because each stored entry exists on exactly one rank.
    owner_known: bool = True
    #: Fault-tolerance knobs; ``None`` disables the failover protocol (a
    #: device death then propagates, exactly like BFS without ``ft``).
    ft: FaultTolerance | None = None
    #: Hard superstep bound (programs usually converge much earlier).
    max_supersteps: int = 200
    #: Dense-frontier sweep threshold (see :data:`DENSE_BETA`).
    dense_beta: float = DENSE_BETA
    #: Forced per-superstep access-plan schedule for tests/ablations:
    #: entry ``i`` is the mode of superstep ``i + 1`` (``"sparse"`` /
    #: ``"dense"``); supersteps past the end repeat the last entry.
    schedule: tuple[str, ...] | None = None
    #: Emit ``("level-mark", superstep, done, next_mode)`` sentinels for
    #: the concurrent multiplexer (never under a bare Scheduler run).
    level_marks: bool = False

    def __post_init__(self):
        if self.num_vertices <= 0:
            raise ConfigError("vertex program needs a positive num_vertices")
        if self.schedule is not None:
            for m in self.schedule:
                if m not in (SPARSE, DENSE):
                    raise ConfigError(f"unknown access mode {m!r} in schedule")


@dataclass
class VPRankResult:
    """Per-rank outcome of one vertex-program run.

    ``result`` is computed from replicated state, so it is identical on
    every rank; the service cross-checks anyway.
    """

    result: object = None
    supersteps: int = 0
    edges_scanned: int = 0
    #: Messages combined across all supersteps (triplets posted).
    messages: int = 0
    #: Supersteps served by a dense storage-order sweep.
    sweeps: int = 0
    seconds: float = 0.0
    failovers: int = 0
    dropped_vertices: int = 0
    device_failed: bool = False
    corrupt: bool = False
    partial: bool = False
    deadline_exceeded: bool = False
    #: Access mode chosen per superstep ("sparse"/"dense"); rank-uniform.
    modes: list = field(default_factory=list)


class VertexProgram(abc.ABC):
    """Contract for one analysis on the scatter/gather runtime.

    State lives in numpy arrays sized ``num_vertices`` (replicated per
    rank); all hooks are vectorized and **deterministic** — they run
    identically on every rank, which is what lets the runtime keep state
    replicated with one collective per superstep.
    """

    name: str = "abstract"
    #: Message value dtype.
    msg_dtype = np.float64
    #: Combiner: ``"add"`` | ``"min"`` | ``"max"``.
    combine: str = "add"
    #: Do message values depend on the source vertex's state/degree?
    #: ``False`` lets a sparse superstep use the flat ``expand_fringe``
    #: batch path (values must then be per-superstep constants, and the
    #: combiner must be ``min``/``max`` so duplicates are harmless).
    needs_source: bool = True

    @abc.abstractmethod
    def init(self, n: int) -> np.ndarray:
        """Allocate state and return the initial active vertex ids."""

    @abc.abstractmethod
    def apply(self, combined: np.ndarray, has_msg: np.ndarray, superstep: int):
        """Fold one superstep's combined messages into the state.

        Returns ``(next_active_ids, done)``; the runtime additionally
        stops on an empty frontier or at ``max_supersteps``.
        """

    @abc.abstractmethod
    def finalize(self) -> object:
        """Build the (rank-uniform) analysis result from final state."""

    def edge_messages(self, v: int, neighbors: np.ndarray, superstep: int):
        """Scatter along ``v``'s stored edges: ``(dsts, srcs, values)``.

        Called once per scanned active vertex when ``needs_source``;
        default emits nothing.
        """
        raise NotImplementedError

    def constant_value(self, superstep: int) -> float:
        """Per-superstep message constant for ``needs_source=False``."""
        raise NotImplementedError


# -- the runtime -------------------------------------------------------------


def _combine_posts(posts, combiner, n: int):
    """Canonically merge posted triplet arrays into one dense value array.

    ``posts`` is a list of ``(dst, src, val)`` triples in a deterministic
    order (rank order within a round, rounds in order).  Sorting by
    ``(dst, src)`` with a stable sort before reduction makes the combined
    array independent of backend storage order and of failover re-routing;
    equal ``(dst, src)`` keys (partial adjacency slices under edge
    granularity) fall back to post order, which is rank order.
    """
    ufunc, identity = _COMBINERS[combiner]
    out = np.full(n, identity, dtype=np.float64)
    has = np.zeros(n, dtype=bool)
    live = [p for p in posts if len(p[0])]
    if not live:
        return out, has, 0
    dsts = np.concatenate([p[0] for p in live])
    srcs = np.concatenate([p[1] for p in live])
    vals = np.concatenate([p[2] for p in live]).astype(np.float64)
    order = np.lexsort((srcs, dsts))
    dsts, vals = dsts[order], vals[order]
    ufunc.at(out, dsts, vals)
    has[dsts] = True
    return out, has, len(dsts)


def _pick_mode(cfg: VPConfig, superstep: int, active_count: int) -> str:
    if cfg.schedule is not None:
        return cfg.schedule[min(superstep - 1, len(cfg.schedule) - 1)]
    return DENSE if active_count * cfg.dense_beta >= cfg.num_vertices else SPARSE


def _responsibility(active: np.ndarray, rank: int, owner_of, ft: FTState | None):
    """Active vertices this rank must scan (first surviving chain holder).

    ``active`` is rank-uniform, so every rank computes every vertex's
    responsible rank from the shared owner map and dead set — no
    coordination messages.  Vertices whose whole chain is dead route to no
    rank (they are counted as dropped at the end of the superstep).
    """
    if not len(active):
        return active
    owners = np.asarray(owner_of(active), dtype=np.int64)
    if ft is None or not ft.dead:
        return active[owners == rank]
    routes = route_to_replicas(owners, ft)
    return active[routes == rank]


def _scan_messages(ctx, db, prog: VertexProgram, todo: np.ndarray, mode: str, superstep: int, ft):
    """Gather/scatter one rank's share of a superstep.

    Returns ``(post, ok)`` where ``post = (dst, src, val)`` triplet arrays;
    ``ok=False`` means the device died (or the attempt blew the failover
    timeout) mid-scan and the partial accumulation was discarded.  CPU is
    charged per adjacency entry processed, exactly like the bottom-up
    claim scan (``scan_adjacency`` charges storage I/O but leaves per-edge
    visit time to its caller).
    """
    empty_post = (_EMPTY, _EMPTY, np.empty(0, dtype=np.float64))
    if not len(todo):
        return empty_post, True
    start = ctx.clock.now
    if not prog.needs_source:
        # Flat batch expansion (the top-down BFS plan): values are
        # per-superstep constants, so only destinations matter.
        if ft is not None:
            flat = try_expand(ctx, db, None, todo, ft, prefetch=False)
            if flat is None:
                return empty_post, False
        else:
            out = LongArray()
            db.expand_fringe(todo, out)
            flat = out.view()
        dsts = np.asarray(flat, dtype=np.int64)
        vals = np.full(len(dsts), prog.constant_value(superstep), dtype=np.float64)
        return (dsts, np.full(len(dsts), -1, dtype=np.int64), vals), True

    dst_parts: list[np.ndarray] = []
    src_parts: list[np.ndarray] = []
    val_parts: list[np.ndarray] = []
    examined = 0
    ok = True
    try:
        if mode == DENSE:
            source = _adjacency_source(db, todo)
        else:
            source = db.scan_adjacency(todo, order="storage")
        for v, neighbors in source:
            examined += len(neighbors)
            d, s, val = prog.edge_messages(int(v), neighbors, superstep)
            if len(d):
                dst_parts.append(np.asarray(d, dtype=np.int64))
                src_parts.append(np.asarray(s, dtype=np.int64))
                val_parts.append(np.asarray(val, dtype=np.float64))
    except DeviceFailedError as e:
        if ft is None:
            raise
        ft.self_dead = True
        if isinstance(e, CorruptBlockError):
            ft.corrupt = True
        else:
            ft.device_failed = True
        ok = False
    ctx.clock.advance(examined * db.cpu.edge_visit_seconds)
    db.stats.edges_scanned += examined
    timeout = ft.cfg.attempt_timeout if ft is not None else None
    if ok and timeout is not None and ctx.clock.now - start > timeout:
        ft.self_dead = True
        ft.timed_out = True
        ok = False
    if not ok:
        return empty_post, False
    if not dst_parts:
        return empty_post, True
    return (
        np.concatenate(dst_parts),
        np.concatenate(src_parts),
        np.concatenate(val_parts),
    ), True


def vertexprog_program(ctx, db, cfg: VPConfig, prog: VertexProgram):
    """Rank program (generator) running one vertex program to completion.

    Run on every back-end rank through ``QueryService._run_on_backends``
    (or interleaved by the concurrent multiplexer when
    ``cfg.level_marks``); returns a :class:`VPRankResult`.
    """
    comm = ctx.comm
    rank = comm.rank
    n = cfg.num_vertices
    if prog.combine not in _COMBINERS:
        raise ConfigError(f"unknown combiner {prog.combine!r}")
    if not prog.needs_source and prog.combine == "add":
        raise ConfigError(
            "needs_source=False requires a min/max combiner (flat batch "
            "expansion cannot attribute additive values to sources)"
        )
    if (
        prog.combine == "add"
        and not cfg.owner_known
        and cfg.ft is not None
        and cfg.ft.replication > 1
    ):
        raise ConfigError(
            "additive vertex programs cannot run on replicated owner-unknown "
            "declustering: every stored copy of an edge would be counted"
        )
    result = VPRankResult()
    start_time = ctx.clock.now
    edges_before = db.stats.edges_scanned
    ft = FTState(cfg.ft, comm.size) if cfg.ft is not None else None
    if ft is not None and rank in ft.cfg.known_dead:
        ft.self_dead = True

    active = np.asarray(prog.init(n), dtype=np.int64)
    frontier = Bitset(n)
    if len(active):
        frontier.set_many(active)

    aborted = False
    if cfg.level_marks:
        # Pre-admission mark (no comm before it): lets the multiplexer
        # place this analysis in its round-robin order and predict whether
        # its first superstep runs a shareable dense sweep.
        nxt = _pick_mode(cfg, 1, frontier.count()) if len(active) else None
        cmd = yield ("level-mark", 0, False, BOTTOM_UP if nxt == DENSE else None)
        if cmd == "abort":
            aborted = True
            result.partial = True
            result.deadline_exceeded = True

    superstep = 0
    while not aborted and len(active) and superstep < cfg.max_supersteps:
        superstep += 1
        mode = _pick_mode(cfg, superstep, frontier.count())
        result.modes.append(mode)
        if mode == DENSE:
            result.sweeps += 1

        # Responsibility split + bounded failover rounds.  Message triplets
        # are *gathered* to rank 0 (they travel the wire once), deaths ride
        # a tiny flag broadcast, and the canonical combine runs once at the
        # root before the dense result is broadcast back — the same
        # compress-before-broadcast shape as an allreduce, at a fraction of
        # an allgather's bytes.  The covered set needs no shipping at all:
        # routing is a pure function of rank-uniform state (active set,
        # owner map, dead set), so every rank tracks which vertices each
        # round's surviving scanners completed and a replacement holder
        # subtracts them — no vertex's messages are ever produced twice
        # (which would corrupt additive combiners) and a dying rank's
        # half-finished round, whose post was discarded, is re-scanned.
        posts: list[tuple] = []  # meaningful at rank 0 only
        covered_mask = np.zeros(len(active), dtype=bool)
        extra_rounds = 0
        owner_of = ctx.owner_of if cfg.owner_known else None
        id_dtype = np.int32 if n <= np.iinfo(np.int32).max else np.int64
        while True:
            todo = _EMPTY
            routes_all = None
            if owner_of is not None:
                owners_all = np.asarray(owner_of(active), dtype=np.int64)
                if ft is not None and ft.dead:
                    routes_all = route_to_replicas(owners_all, ft)
                else:
                    routes_all = owners_all
            if not (ft is not None and ft.self_dead):
                if routes_all is not None:
                    todo = active[(routes_all == rank) & ~covered_mask]
                else:
                    # Owner unknown (edge granularity): every rank scans
                    # its own stored slice of the whole active set, and the
                    # loop never retries — the coverage sets are disjoint
                    # by storage, not by routing.
                    todo = active
            if ft is not None and extra_rounds and len(todo):
                ft.failovers += 1  # picked up a dead peer's shard
            post, ok = _scan_messages(ctx, db, prog, todo, mode, superstep, ft)
            if not ok:
                post = (_EMPTY, _EMPTY, np.empty(0, dtype=np.float64))
            post = (
                post[0].astype(id_dtype, copy=False),
                post[1].astype(id_dtype, copy=False),
                post[2],
            )
            self_dead = ft.self_dead if ft is not None else False
            prev_dead = set(ft.dead) if ft is not None else set()
            gathered = yield from comm.gather((self_dead, post), root=0)
            if rank == 0:
                flags = [g[0] for g in gathered]
                posts.extend(g[1] for g in gathered)
            else:
                flags = None
            flags = yield from comm.bcast(flags, root=0)
            if ft is not None:
                for q, is_dead in enumerate(flags):
                    if is_dead:
                        ft.dead.add(q)
            if routes_all is not None:
                # Vertices routed to a rank that scanned without dying this
                # round are done; a newly dead scanner's share stays open
                # for the next round's replacement holder.
                ok_rank = np.ones(comm.size + 1, dtype=bool)
                if ft is not None:
                    for q in ft.dead:
                        ok_rank[q] = False
                covered_mask |= (routes_all >= 0) & ok_rank[routes_all]
            if ft is None or not (ft.dead - prev_dead):
                break
            if owner_of is None:
                # Broadcast-style coverage: a dead rank's slice has no
                # replica route to retry through; degrade.
                if ft.cfg.replication <= 1:
                    ft.partial = True
                break
            if extra_rounds >= ft.cfg.max_retries:
                ft.partial = True
                break
            extra_rounds += 1
        if ft is not None and ft.dead and owner_of is not None:
            # Whole replica chains dead: their adjacency is unreachable.
            # The set is rank-uniform; counted once, on the primary owner
            # (whose program — though dead — still runs this epilogue).
            owners_all = np.asarray(owner_of(active), dtype=np.int64)
            lost = route_to_replicas(owners_all, ft) == -1
            if lost.any():
                ft.dropped += int((owners_all[lost] == rank).sum())
                ft.partial = True

        # Canonical combine at the root, dense result broadcast to all.
        # The broadcast object is shared in-process; ``apply`` hooks treat
        # ``combined``/``has_msg`` as read-only (the contract), so sharing
        # is safe and costs one dense array on the wire instead of every
        # posted triplet ever reaching every rank.
        packed = _combine_posts(posts, prog.combine, n) if rank == 0 else None
        combined, has_msg, nmsgs = yield from comm.bcast(packed, root=0)
        result.messages += nmsgs
        active, done = prog.apply(combined, has_msg, superstep)
        active = np.asarray(active, dtype=np.int64)
        frontier.clear_all()
        if len(active):
            frontier.set_many(active)
        result.supersteps = superstep
        done = bool(done) or not len(active) or superstep >= cfg.max_supersteps
        if cfg.level_marks:
            nxt = _pick_mode(cfg, superstep + 1, frontier.count()) if not done else None
            cmd = yield (
                "level-mark",
                superstep,
                done,
                BOTTOM_UP if nxt == DENSE else None,
            )
            if cmd == "abort":
                if not done:
                    result.partial = True
                    result.deadline_exceeded = True
                break
        if done:
            break

    result.result = None if aborted else prog.finalize()
    result.edges_scanned = db.stats.edges_scanned - edges_before
    result.seconds = ctx.clock.now - start_time
    if ft is not None:
        result.failovers = ft.failovers
        result.dropped_vertices = ft.dropped
        result.device_failed = ft.device_failed
        result.corrupt = ft.corrupt
        result.partial = result.partial or ft.partial
    return result


# -- plug-ins ---------------------------------------------------------------


class PageRankProgram(VertexProgram):
    """PageRank by power iteration, run until global L1 convergence.

    Superstep 1 is a degree census (each responsible rank reports the
    stored out-degree of its vertices — additive, so edge-granularity
    slices sum correctly); a vertex is *present* iff it has stored
    adjacency, which the ingestion service guarantees for every endpoint
    (both directions of each undirected edge are stored).  Iterations
    then scatter ``rank/degree`` along every stored edge and converge
    when the L1 delta drops below ``tol``.
    """

    name = "pagerank"
    combine = "add"
    needs_source = True

    def __init__(self, damping: float = 0.85, tol: float = 1e-9, max_iters: int = 100):
        if not 0.0 < damping < 1.0:
            raise ConfigError(f"damping must be in (0, 1), got {damping}")
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iters = int(max_iters)
        self.degree: np.ndarray | None = None
        self.present: np.ndarray | None = None
        self.ranks: np.ndarray | None = None
        self.iterations = 0
        self.delta = np.inf
        self._n = 0

    def init(self, n: int) -> np.ndarray:
        self._n = n
        return np.arange(n, dtype=np.int64)  # census touches every id

    def edge_messages(self, v, neighbors, superstep):
        if superstep == 1:  # degree census: one additive message to self
            return (
                np.array([v], dtype=np.int64),
                np.array([v], dtype=np.int64),
                np.array([float(len(neighbors))]),
            )
        share = self.ranks[v] / self.degree[v]
        return (
            neighbors.astype(np.int64),
            np.full(len(neighbors), v, dtype=np.int64),
            np.full(len(neighbors), share),
        )

    def apply(self, combined, has_msg, superstep):
        if superstep == 1:
            self.degree = np.where(has_msg, combined, 0.0)
            self.present = self.degree > 0
            n_eff = int(self.present.sum())
            self.ranks = np.where(self.present, 1.0 / max(n_eff, 1), 0.0)
            return np.flatnonzero(self.present), n_eff == 0
        n_eff = int(self.present.sum())
        new = np.where(
            self.present, (1.0 - self.damping) / n_eff + self.damping * combined, 0.0
        )
        self.delta = float(np.abs(new - self.ranks).sum())
        self.ranks = new
        self.iterations = superstep - 1
        if self.delta < self.tol or self.iterations >= self.max_iters:
            return _EMPTY, True
        return np.flatnonzero(self.present), False

    def finalize(self):
        order = np.argsort(-self.ranks, kind="stable")
        top = [
            (int(v), float(self.ranks[v]))
            for v in order[:20]
            if self.present[v]
        ]
        return {
            "num_vertices": int(self.present.sum()) if self.present is not None else 0,
            "iterations": self.iterations,
            "delta": self.delta,
            "top": top,
            "ranks": self.ranks,
            "present": self.present,
        }


class ComponentsProgram(VertexProgram):
    """Weakly-connected components by min-label propagation.

    Superstep 1 scatters every vertex's own id along its stored edges;
    afterwards only vertices whose label just dropped re-scatter, so the
    frontier shrinks from all-present to the contested boundary — the
    access pattern that exercises the dense-to-sparse switch.
    """

    name = "components"
    combine = "min"
    needs_source = True

    def __init__(self):
        self.labels: np.ndarray | None = None
        self.present: np.ndarray | None = None
        self.rounds = 0
        self._n = 0

    def init(self, n: int) -> np.ndarray:
        self._n = n
        self.labels = np.arange(n, dtype=np.int64).astype(np.float64)
        self.present = np.zeros(n, dtype=bool)
        return np.arange(n, dtype=np.int64)

    def edge_messages(self, v, neighbors, superstep):
        return (
            neighbors.astype(np.int64),
            np.full(len(neighbors), v, dtype=np.int64),
            np.full(len(neighbors), self.labels[v]),
        )

    def apply(self, combined, has_msg, superstep):
        self.rounds = superstep
        if superstep == 1:
            # A vertex is present iff it has stored adjacency: with both
            # directions stored, every endpoint receives at least one
            # message (its neighbor's label).
            self.present = has_msg.copy()
        improved = has_msg & (combined < self.labels)
        self.labels = np.where(improved, combined, self.labels)
        return np.flatnonzero(improved), False

    def finalize(self):
        labels = self.labels[self.present].astype(np.int64)
        uniq, counts = np.unique(labels, return_counts=True)
        return {
            "num_components": int(len(uniq)),
            "sizes": sorted((int(c) for c in counts), reverse=True),
            "rounds": self.rounds,
            "labels": {
                int(v): int(self.labels[v]) for v in np.flatnonzero(self.present)
            },
        }


class EgoNetProgram(VertexProgram):
    """k-hop ego-net extraction: every vertex within ``k`` hops of a source.

    Message values are per-superstep constants (the hop count), so sparse
    supersteps ride the flat ``expand_fringe`` batch path with a ``min``
    combiner — the closest analytics analogue of a top-down BFS level.
    """

    name = "ego-net"
    combine = "min"
    needs_source = False

    def __init__(self, source: int, hops: int):
        self.source = int(source)
        self.hops = int(hops)
        if self.hops < 0:
            raise ConfigError(f"hops must be >= 0, got {self.hops}")
        self.level: np.ndarray | None = None

    def init(self, n: int) -> np.ndarray:
        if not 0 <= self.source < n:
            raise ConfigError(f"source {self.source} outside id space [0, {n})")
        self.level = np.full(n, -1, dtype=np.int64)
        self.level[self.source] = 0
        return _EMPTY if self.hops == 0 else np.array([self.source], dtype=np.int64)

    def constant_value(self, superstep: int) -> float:
        return float(superstep)

    def apply(self, combined, has_msg, superstep):
        fresh = has_msg & (self.level < 0)
        self.level[fresh] = superstep
        nxt = np.flatnonzero(fresh)
        return nxt, superstep >= self.hops

    def finalize(self):
        members = np.flatnonzero(self.level >= 0)
        per_level = [
            int((self.level == lev).sum()) for lev in range(int(self.level.max()) + 1)
        ]
        return {
            "source": self.source,
            "hops": self.hops,
            "num_vertices": int(len(members)),
            "per_level": per_level,
            "vertices": members,
        }


def triangle_count_program(ctx, db, cfg: VPConfig, prog=None):
    """Rank program: exact triangle and wedge counts over the stored graph.

    Not a scatter/gather computation — wedge closure needs adjacency
    *membership*, not combinable scalars — but built from the runtime's
    parts: the responsibility split (each vertex's list is read by its
    first surviving chain holder, with bounded re-scan rounds on a death),
    the storage-order sweep (shareable under the concurrent multiplexer),
    and one alltoall routing wedge-closure checks to the rank holding the
    queried vertex's adjacency.  Each triangle {a, b, c} yields exactly
    three wedge checks (one centered at each corner), so ``triangles =
    closed / 3``; wedges are ``sum_v C(deg_v, 2)``.  Requires an owner
    map (vertex-granularity declustering).
    """
    comm = ctx.comm
    rank = comm.rank
    size = comm.size
    if not cfg.owner_known:
        raise ConfigError("triangle counting needs an owner map (vertex granularity)")
    owner_of = ctx.owner_of
    result = VPRankResult()
    start_time = ctx.clock.now
    edges_before = db.stats.edges_scanned
    ft = FTState(cfg.ft, size) if cfg.ft is not None else None
    if ft is not None and rank in ft.cfg.known_dead:
        ft.self_dead = True

    aborted = False
    if cfg.level_marks:
        cmd = yield ("level-mark", 0, False, BOTTOM_UP)
        if cmd == "abort":
            aborted = True
            result.partial = True
            result.deadline_exceeded = True

    # Phase 1: one storage-order sweep per responsible rank, extracting
    # each vertex's neighbor set (cached for phase 2 membership tests)
    # and its wedge list; bounded re-scan rounds mirror the runtime.
    adj: dict[int, np.ndarray] = {}
    wedges = 0
    checks: list[np.ndarray] = []  # (center excluded) wedge endpoints (u, w)
    scanned = _EMPTY
    extra_rounds = 0
    while not aborted:
        result.supersteps += 1
        todo = _EMPTY
        if not (ft is not None and ft.self_dead):
            try:
                local = np.asarray(db.local_vertices(), dtype=np.int64)
                owners = np.asarray(owner_of(local), dtype=np.int64)
                if ft is not None and ft.dead:
                    routes = route_to_replicas(owners, ft)
                    mine = local[routes == rank]
                else:
                    mine = local[owners == rank]
                todo = np.setdiff1d(mine, scanned)
            except DeviceFailedError as e:
                ft.self_dead = True
                if isinstance(e, CorruptBlockError):
                    ft.corrupt = True
                else:
                    ft.device_failed = True
        round_pairs: list[np.ndarray] = []
        round_adj: dict[int, np.ndarray] = {}
        round_wedges = 0
        examined = 0
        ok = True
        if len(todo):
            if ft is not None and extra_rounds:
                ft.failovers += 1
            try:
                for v, neighbors in _adjacency_source(db, todo):
                    examined += len(neighbors)
                    nbrs = np.unique(neighbors.astype(np.int64))
                    nbrs = nbrs[nbrs != v]  # self-loops close no wedges
                    round_adj[int(v)] = nbrs
                    k = len(nbrs)
                    round_wedges += k * (k - 1) // 2
                    if k >= 2:
                        iu, iw = np.triu_indices(k, 1)
                        round_pairs.append(
                            np.column_stack([nbrs[iu], nbrs[iw]])
                        )
            except DeviceFailedError as e:
                if ft is None:
                    raise
                ft.self_dead = True
                if isinstance(e, CorruptBlockError):
                    ft.corrupt = True
                else:
                    ft.device_failed = True
                ok = False
            ctx.clock.advance(examined * db.cpu.edge_visit_seconds)
            db.stats.edges_scanned += examined
        if ok and not (ft is not None and ft.self_dead):
            adj.update(round_adj)
            wedges += round_wedges
            checks.extend(round_pairs)
            scanned = np.union1d(scanned, todo)
        elif ft is not None and ft.self_dead:
            # A dead rank's cached neighbor sets are unreadable in phase 2
            # and its responsibility re-routes wholesale, so its *entire*
            # accumulation is void — the first surviving chain member
            # re-scans every vertex routed to it (its own ``scanned`` set
            # cannot contain them), producing each vertex's wedges exactly
            # once across the cluster.
            adj.clear()
            wedges = 0
            checks = []
            scanned = _EMPTY
        self_dead = ft.self_dead if ft is not None else False
        prev_dead = set(ft.dead) if ft is not None else set()
        posts = yield from comm.allgather(self_dead)
        if ft is not None:
            for q, is_dead in enumerate(posts):
                if is_dead:
                    ft.dead.add(q)
        if ft is None or not (ft.dead - prev_dead):
            break
        if extra_rounds >= ft.cfg.max_retries:
            ft.partial = True
            break
        extra_rounds += 1

    if cfg.level_marks and not aborted:
        cmd = yield ("level-mark", result.supersteps, False, None)
        if cmd == "abort":
            aborted = True
            result.partial = True
            result.deadline_exceeded = True

    closed = 0
    if not aborted:
        # Phase 2: route each wedge (u, w) to the rank responsible for u's
        # adjacency under the final dead set; that rank answers membership
        # of w from its cached neighbor sets.
        pairs = (
            np.vstack(checks) if checks else np.zeros((0, 2), dtype=np.int64)
        )
        owners = np.asarray(owner_of(pairs[:, 0]), dtype=np.int64)
        if ft is not None and ft.dead:
            routes = route_to_replicas(owners, ft)
            lost = routes == -1
            if lost.any():
                ft.partial = True
                ft.dropped += int(lost.sum())
                pairs, routes = pairs[~lost], routes[~lost]
        else:
            routes = owners
        parts = [pairs[routes == q] for q in range(size)]
        received = yield from comm.alltoall(parts)
        mine = 0
        probes = 0
        for batch in received:
            batch = np.asarray(batch, dtype=np.int64).reshape(-1, 2)
            if not len(batch):
                continue
            batch = batch[np.argsort(batch[:, 0], kind="stable")]
            uniq, starts = np.unique(batch[:, 0], return_index=True)
            bounds = np.append(starts, len(batch))
            for i, u in enumerate(uniq):
                ws = batch[bounds[i] : bounds[i + 1], 1]
                nbrs = adj.get(int(u))
                if nbrs is None or not len(nbrs):
                    probes += len(ws)
                    continue
                # ``nbrs`` is sorted (np.unique): binary-search membership,
                # charged one comparison per bisection step.
                probes += len(ws) * (int(np.log2(len(nbrs))) + 1)
                idx = np.searchsorted(nbrs, ws)
                valid = idx < len(nbrs)
                mine += int((nbrs[idx[valid]] == ws[valid]).sum())
        ctx.compute(probes * db.cpu.compare_seconds)
        total_closed, total_wedges = yield from comm.allreduce(
            (mine, wedges), lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        closed = total_closed
        wedges = total_wedges
        result.supersteps += 1

    if cfg.level_marks and not aborted:
        yield ("level-mark", result.supersteps, True, None)

    result.result = None if aborted else {
        "triangles": closed // 3,
        "wedges": wedges,
        "closed_checks": closed,
    }
    result.edges_scanned = db.stats.edges_scanned - edges_before
    result.seconds = ctx.clock.now - start_time
    if ft is not None:
        result.failovers = ft.failovers
        result.dropped_vertices = ft.dropped
        result.device_failed = ft.device_failed
        result.corrupt = ft.corrupt
        result.partial = result.partial or ft.partial
    return result


# -- Query Service integration ----------------------------------------------


#: Drain-capable program factories: name -> (params -> generator factory).
#: Used by ``QueryService`` both for solo ``query()`` runs and to build
#: level-marked generators for ``query_many`` drains.
PROGRAM_FACTORIES = {
    "pagerank": lambda params: lambda: PageRankProgram(
        damping=params.get("damping", 0.85),
        tol=params.get("tol", 1e-9),
        max_iters=params.get("max_iters", 100),
    ),
    "components": lambda params: lambda: ComponentsProgram(),
    "ego-net": lambda params: lambda: EgoNetProgram(
        source=params["source"], hops=params.get("hops", 2)
    ),
}


class _VPContext:
    """Adds the owner map to a rank context (runtime-internal)."""

    def __init__(self, ctx, owner_of):
        self._ctx = ctx
        self.owner_of = owner_of

    def __getattr__(self, name):
        return getattr(self._ctx, name)


def make_vp_generator(service, analysis: str, params: dict, level_marks: bool):
    """Build ``gen(ctx, q)`` producing one back-end rank's generator.

    Shared by the solo path and the concurrent multiplexer; raises
    :class:`ConfigError` for unknown analyses or an unsized id space.
    """
    if service.num_vertices is None:
        raise ConfigError(
            f"{analysis!r} needs the vertex-id space size; ingest through the "
            "MSSG facade first"
        )
    cfg = VPConfig(
        num_vertices=service.num_vertices,
        owner_known=service.declusterer.owner_known,
        ft=service._ft(),
        dense_beta=params.get("dense_beta", DENSE_BETA),
        schedule=tuple(params["schedule"]) if params.get("schedule") else None,
        max_supersteps=params.get("max_supersteps", 200),
        level_marks=level_marks,
    )
    owner_of = service.declusterer.owner_of if service.declusterer.owner_known else None
    if analysis == "triangles":
        def gen(ctx, q):
            return triangle_count_program(
                _VPContext(ctx, owner_of), service.dbs[q], cfg
            )
        return gen
    factory = PROGRAM_FACTORIES[analysis](params)

    def gen(ctx, q):
        return vertexprog_program(
            _VPContext(ctx, owner_of), service.dbs[q], cfg, factory()
        )

    return gen


def vp_report(
    analysis: str,
    params: dict,
    results: list[VPRankResult],
    seconds: float,
    edges_scanned: int | None = None,
    tenant: str = "default",
    queue_seconds: float = 0.0,
):
    """Aggregate per-rank results into a ``QueryReport``.

    The payload is computed from replicated state, so it must be
    bit-identical on every rank; the cross-check hashes the raw payload
    (ndarrays included) and raises on any divergence.  Used by both the
    solo runner and the concurrent drain (which passes per-query
    ``seconds``/``edges_scanned`` attribution instead of run totals).
    """
    from .query import QueryReport

    digests = {_digest(r.result) for r in results}
    if len(digests) != 1:
        raise ConfigError(f"back-ends disagree on {analysis} outcome")
    shaper = RESULT_SHAPERS[analysis](params)
    raw = results[0].result
    payload = shaper(raw) if (shaper and raw is not None) else raw
    return QueryReport(
        analysis=analysis,
        seconds=seconds,
        result=payload,
        edges_scanned=(
            sum(r.edges_scanned for r in results)
            if edges_scanned is None
            else edges_scanned
        ),
        levels=max(r.supersteps for r in results),
        partial=any(r.partial for r in results),
        failovers=sum(r.failovers for r in results),
        device_failures=sum(r.device_failed for r in results),
        corrupt_backends=tuple(q for q, r in enumerate(results) if r.corrupt),
        dropped_vertices=sum(r.dropped_vertices for r in results),
        deadline_exceeded=any(r.deadline_exceeded for r in results),
        tenant=tenant,
        queue_seconds=queue_seconds,
    )


def _digest(obj) -> bytes:
    """Order-stable fingerprint of a rank result for agreement checks."""
    import hashlib

    h = hashlib.sha256()

    def feed(x):
        if isinstance(x, dict):
            for k in sorted(x, key=repr):
                h.update(repr(k).encode())
                feed(x[k])
        elif isinstance(x, np.ndarray):
            h.update(np.ascontiguousarray(x).tobytes())
        elif isinstance(x, (list, tuple)):
            for item in x:
                feed(item)
        else:
            h.update(repr(x).encode())

    feed(obj)
    return h.digest()


def _shape_pagerank(params):
    def shape(raw):
        out = {
            "num_vertices": raw["num_vertices"],
            "iterations": raw["iterations"],
            "delta": raw["delta"],
            "top": raw["top"],
        }
        if params.get("return_ranks", False):
            present = raw["present"]
            out["ranks"] = {
                int(v): float(raw["ranks"][v]) for v in np.flatnonzero(present)
            }
        return out

    return shape


def _shape_components(params):
    def shape(raw):
        out = {
            "num_components": raw["num_components"],
            "sizes": raw["sizes"],
            "rounds": raw["rounds"],
        }
        # The full per-vertex table is an unbounded payload at scale;
        # callers opt in explicitly.
        if params.get("return_labels", False):
            out["labels"] = raw["labels"]
        return out

    return shape


def _shape_egonet(params):
    def shape(raw):
        out = dict(raw)
        if params.get("return_vertices", True):
            out["vertices"] = [int(v) for v in raw["vertices"]]
        else:
            del out["vertices"]
        return out

    return shape


RESULT_SHAPERS = {
    "pagerank": _shape_pagerank,
    "components": _shape_components,
    "ego-net": _shape_egonet,
    "triangles": lambda params: None,
}

VP_ANALYSES = ("pagerank", "components", "ego-net", "triangles")


def register_vertex_programs(service) -> None:
    """Register the runtime-backed analytics suite on a query service."""

    def make_runner(analysis: str):
        def runner(**params) -> object:
            gen = make_vp_generator(service, analysis, params, level_marks=False)

            def make(q):
                def program(ctx):
                    res = yield from gen(ctx, q)
                    return res

                return program

            results = service._run_on_backends(make)
            return vp_report(
                analysis, params, results, seconds=service.cluster.makespan
            )

        return runner

    for analysis in VP_ANALYSES:
        # "components" replaces the dict-based extension analysis (kept as
        # "components-dict" for the ablation benchmark), so an explicit
        # override is intended here.
        service.register(analysis, make_runner(analysis), override=True)
