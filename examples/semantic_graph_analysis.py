#!/usr/bin/env python
"""Semantic-graph analysis: ontologies, validation, typed queries.

Demonstrates the semantic layer of MSSG (paper §1, Figure 1.1): build a
typed PubMed-style citation graph against its ontology, show that the
ontology rejects ill-typed edges, validate an untrusted graph, then ingest
the instance graph into MSSG and run the registered analyses — BFS
relationship queries, degree census, and k-hop neighborhood counts.

Run:  python examples/semantic_graph_analysis.py
"""

from repro import MSSG, MSSGConfig
from repro.graphgen import pubmed_ontology, pubmed_semantic_graph
from repro.ontology import SemanticGraph, validate_graph
from repro.util import OntologyError


def main() -> None:
    onto = pubmed_ontology()
    print(f"Ontology {onto.name!r}:")
    print(f"  vertex types: {sorted(onto.vertex_types)}")
    print(f"  edge types:   {sorted(onto.edge_types)}")

    # --- The ontology constrains instance graphs (Figure 1.1's point) ----
    g = SemanticGraph(onto)
    g.add_vertex(0, "Article")
    g.add_vertex(1, "Author")
    g.add_vertex(2, "Journal")
    g.add_edge(1, 0, "authored")  # fine
    g.add_edge(0, 2, "published_in")  # fine
    try:
        g.add_edge(1, 2, "authored")  # an Author cannot author a Journal
    except OntologyError as err:
        print(f"\nRejected ill-typed edge, as intended:\n  {err}")

    # --- Validate an untrusted graph wholesale ---------------------------
    untrusted = SemanticGraph()  # no ontology attached: anything goes in
    untrusted.add_vertex(0, "Article")
    untrusted.add_vertex(1, "Spaceship")
    untrusted.add_edge(0, 1, "cites")
    violations = validate_graph(untrusted, onto)
    print(f"\nValidation of an untrusted graph found {len(violations)} problem(s):")
    for v in violations:
        print(f"  [{v.kind}] {v.detail}")

    # --- A full typed instance graph, ingested into MSSG -----------------
    pubmed = pubmed_semantic_graph(num_articles=400, num_authors=150, seed=3)
    assert validate_graph(pubmed) == []
    print(f"\nGenerated {pubmed.name!r}: {pubmed.num_vertices} vertices,")
    for vtype, count in sorted(pubmed.type_histogram().items()):
        print(f"  {vtype:<10} {count:>5}")

    with MSSG(MSSGConfig(num_backends=4, backend="grDB")) as mssg:
        # Typed ingestion: validates against the ontology and replicates
        # vertex-type metadata to every back-end in one call.
        _, codes = mssg.ingest_semantic(pubmed)

        # How closely related are two articles — and through what chain?
        answer = mssg.query_bfs(0, 399)
        print(f"\ndistance(article 0 -> article 399) = {answer.result} hops")
        chain = mssg.query("path", source=0, dest=399).result
        labels = " -> ".join(f"{v}({pubmed.vertex_type(v)})" for v in chain)
        print(f"connection chain: {labels}")

        # The same search through an ontology lens: citations only.
        cites_only = mssg.query(
            "typed-bfs", source=0, dest=399, allowed_codes=[codes["Article"]]
        ).result
        print(
            f"articles-only distance: {cites_only if cites_only is not None else 'unreachable'}"
            " (restricting traversable vertex types lengthens or severs paths)"
        )

        # Which entities have the largest stored degree?
        probe = [0, 1, pubmed.num_vertices - 1]
        degrees = mssg.query("degree", vertices=probe).result
        print(f"degrees of {probe}: {degrees}")

        # How much of the graph sits within 2 hops of article 0?
        neighborhood = mssg.query("neighborhood", source=0, hops=2).result
        share = neighborhood / pubmed.num_vertices
        print(
            f"2-hop neighborhood of article 0: {neighborhood} vertices "
            f"({share:.0%} of the graph — the small-world effect the paper "
            "cites as the reason long searches touch most of the data)"
        )

        # And the global structure in one query.
        comp = mssg.query("components").result
        print(f"connected components: {comp['num_components']} (largest {comp['sizes'][0]})")


if __name__ == "__main__":
    main()
