#!/usr/bin/env python
"""Scaling study: grDB from 2 to 16 nodes, plus the trillion-edge math.

Runs the same synthetic scale-free workload on growing simulated clusters
to show how MSSG's ingestion and search scale with back-end count, applies
grDB's background defragmentation between query batches ("idle time"
maintenance, §3.4.1), and finishes with the paper's own back-of-envelope
arithmetic for the 10^12-edge target that motivates the framework.

Run:  python examples/massive_scale_projection.py
"""

from repro import MSSG, MSSGConfig
from repro.experiments.harness import EXPERIMENT_NODE_SPEC, scaled_grdb_format
from repro.graphdb.grdb import defragment
from repro.graphgen import graph_stats, rmat_edges


def main() -> None:
    edges = rmat_edges(scale=14, num_edges=160_000, seed=5)
    stats = graph_stats(edges, name="Syn-scaled")
    print(stats.header())
    print(stats.row())
    print()

    source, dest = 3, 11_003
    header = (
        f"{'back-ends':>9} {'ingest [s]':>12} {'search [ms]':>12} "
        f"{'after defrag [ms]':>18} {'agg. edges/s':>14}"
    )
    print(header)
    print("-" * len(header))

    for p in (2, 4, 8, 16):
        with MSSG(
            MSSGConfig(
                num_backends=p,
                num_frontends=2,
                backend="grDB",
                growth_policy="link",
                grdb_format=scaled_grdb_format(),
                node_spec=EXPERIMENT_NODE_SPEC,
            )
        ) as mssg:
            ingest = mssg.ingest(edges)
            first = mssg.query_bfs(source, dest)
            # Idle-time maintenance: compact fragmented adjacency chains.
            for db in mssg.dbs:
                defragment(db)
            mssg.query_bfs(source, dest)  # rewarm block caches post-rewrite
            second = mssg.query_bfs(source, dest)
            print(
                f"{p:>9} {ingest.seconds:>12.3f} {first.seconds * 1e3:>12.2f} "
                f"{second.seconds * 1e3:>18.2f} {second.edges_per_second:>14,.0f}"
            )

    # The paper's introduction, reproduced as arithmetic: "a graph with one
    # trillion edges requires 8 [terabytes] of disk space to store and over
    # 2,300 seconds at 50 MB per second just to scan through the data
    # spread over 64 clustered compute nodes."
    edges_target = 10**12
    bytes_per_edge = 8
    nodes = 64
    scan_bandwidth = 50e6
    scan_seconds = edges_target * bytes_per_edge / nodes / scan_bandwidth
    print(
        f"\nThe target the framework is architected for: {edges_target:.0e} edges"
        f"\n  raw storage:      {edges_target * bytes_per_edge / 1e12:.0f} TB"
        f"\n  full scan time:   {scan_seconds:,.0f} s across {nodes} nodes at 50 MB/s"
        "\n  ...which is why StreamDB-style scanning cannot be the only"
        "\n  access path, and a sub-block-addressable store (grDB) exists."
    )


if __name__ == "__main__":
    main()
