#!/usr/bin/env python
"""Compare all six GraphDB backends on the same workload.

A miniature of the paper's chapter 5: ingest one scale-free graph into
each backend (Array, HashMap, MySQL, BerkeleyDB, StreamDB, grDB) on the
same simulated 8-node cluster and measure ingestion time plus the average
relationship-query time, reproducing the standings of Figures 5.3–5.4.

Run:  python examples/backend_comparison.py
"""

from repro import MSSG, MSSGConfig
from repro.bfs import sample_queries_by_distance
from repro.graphdb import BACKENDS
from repro.graphgen import CSRGraph, pubmed_like
from repro.experiments.harness import EXPERIMENT_NODE_SPEC, scaled_grdb_format


def main() -> None:
    edges = pubmed_like(num_vertices=2500, avg_degree=14.8, seed=11)
    graph = CSRGraph.from_edges(edges)
    queries = sample_queries_by_distance(graph, num_queries=8, seed=2)
    print(
        f"Workload: {graph.num_vertices:,} vertices, "
        f"{graph.num_undirected_edges:,} edges, {len(queries)} queries\n"
    )

    header = f"{'backend':<12} {'ingest [s]':>12} {'search avg [ms]':>16} {'edges/s':>14}"
    print(header)
    print("-" * len(header))

    rows = []
    for backend in BACKENDS:
        with MSSG(
            MSSGConfig(
                num_backends=8,
                backend=backend,
                grdb_format=scaled_grdb_format(),
                node_spec=EXPERIMENT_NODE_SPEC,
            )
        ) as mssg:
            ingest = mssg.ingest(edges)
            total_s = 0.0
            total_edges = 0
            for s, d, dist in queries:
                answer = mssg.query_bfs(s, d)
                assert answer.result == dist
                total_s += answer.seconds
                total_edges += answer.edges_scanned
            avg_ms = total_s / len(queries) * 1e3
            eps = total_edges / total_s
            rows.append((backend, ingest.seconds, avg_ms, eps))
            print(f"{backend:<12} {ingest.seconds:>12.4f} {avg_ms:>16.3f} {eps:>14,.0f}")

    fastest_search = min(rows, key=lambda r: r[2])
    fastest_ingest = min(rows, key=lambda r: r[1])
    ooc = [r for r in rows if r[0] in ("MySQL", "BerkeleyDB", "StreamDB", "grDB")]
    best_ooc = min(ooc, key=lambda r: r[2])
    print(
        f"\nFastest search:          {fastest_search[0]} (the in-memory lower bound)"
        f"\nFastest ingestion:       {fastest_ingest[0]}"
        f"\nBest out-of-core search: {best_ooc[0]}"
        " — the paper's headline result"
    )


if __name__ == "__main__":
    main()
