#!/usr/bin/env python
"""Quickstart: deploy MSSG, ingest a scale-free graph, run searches.

This is the 60-second tour of the public API: configure a simulated
cluster (front-end ingestion nodes + back-end storage nodes running grDB),
stream a PubMed-like semantic graph in, and answer relationship queries
(hop distance between entities) with the parallel out-of-core BFS.

Run:  python examples/quickstart.py
"""

from repro import MSSG, MSSGConfig
from repro.graphgen import graph_stats, pubmed_like


def main() -> None:
    # A scaled-down PubMed-like graph: power-law degrees, one huge hub.
    edges = pubmed_like(num_vertices=3000, avg_degree=14.8, seed=7)
    stats = graph_stats(edges, name="demo graph")
    print(stats.header())
    print(stats.row())

    # 2 front-end ingestion nodes + 4 back-end grDB storage nodes.
    config = MSSGConfig(
        num_frontends=2,
        num_backends=4,
        backend="grDB",
        declustering="vertex-rr",  # vertex granularity, owner map = GID % p
        window_size=2048,  # edges per streaming ingestion block
    )
    with MSSG(config) as mssg:
        report = mssg.ingest(edges)
        print(
            f"\nIngested {report.edges_ingested:,} edges "
            f"({report.entries_stored:,} directed entries) "
            f"in {report.seconds:.3f} virtual seconds "
            f"({report.edges_per_second:,.0f} edges/s)"
        )

        print("\nRelationship queries (parallel out-of-core BFS):")
        for source, dest in [(0, 2999), (17, 2500), (5, 6)]:
            answer = mssg.query_bfs(source, dest)
            hops = answer.result if answer.result is not None else "unreachable"
            print(
                f"  distance({source} -> {dest}) = {hops:<12} "
                f"[{answer.seconds * 1e3:7.2f} ms, "
                f"{answer.edges_scanned:,} edges scanned, "
                f"{answer.edges_per_second:,.0f} edges/s]"
            )

        # The pipelined variant (Algorithm 2) overlaps communication with
        # disk access; same answers.
        answer = mssg.query_bfs(0, 2999, pipelined=True, threshold=128)
        print(f"  pipelined BFS agrees: distance(0 -> 2999) = {answer.result}")

        print("\nPer-back-end storage statistics:")
        for i, s in enumerate(mssg.backend_stats()):
            print(
                f"  node {i}: {s['edges_stored']:,} entries stored, "
                f"{s['adjacency_requests']:,} adjacency requests served"
            )

        from repro.experiments import cluster_utilization, format_utilization

        print("\nCluster utilization:")
        print(format_utilization(cluster_utilization(mssg)))


if __name__ == "__main__":
    main()
