# Convenience targets for the MSSG reproduction.

PYTHON ?= python

.PHONY: install test test-faults test-ingest-faults test-direction test-integrity test-concurrent test-vertexprog test-compression test-semiem test-streaming check-cache-factory lint bench bench-quick bench-smoke examples figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

test-faults:  # fault injection / failover suite, warnings promoted to errors
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_fault_paths.py

test-ingest-faults:  # ingestion-time failover + rebalance suite, warnings promoted to errors
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_fault_paths.py \
		-k "Ingestion or Rebalance or WindowGreedyOwnerLookup"

test-direction:  # direction-optimizing BFS suite, warnings promoted to errors
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_direction.py tests/test_bitset.py

test-integrity:  # checksums / corruption / read-repair / crash-recovery suite
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_integrity.py

test-concurrent: check-cache-factory  # multi-query scheduler suite, warnings promoted to errors
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_scheduler_concurrent.py

test-vertexprog:  # scatter/gather vertex-program runtime + analytics suite
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_vertexprog.py tests/test_analyses.py

test-compression:  # delta+varint compressed adjacency suite, warnings promoted to errors
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_compression.py

test-semiem:  # semi-external-memory mode suite, warnings promoted to errors
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_semiem.py

test-streaming:  # streaming ingest / delta log / snapshot consistency suite
	PYTHONPATH=src $(PYTHON) -m pytest -q -W error tests/test_streaming.py

check-cache-factory:  # block caches must come from make_block_cache, never direct construction
	@offenders=$$(grep -rln 'LRUBlockCache(' src/repro --include='*.py' \
		| grep -v 'storage/blockcache.py' || true); \
	if [ -n "$$offenders" ]; then \
		echo "direct LRUBlockCache construction (use make_block_cache):"; \
		echo "$$offenders"; exit 1; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

bench-quick:  # smaller workloads for a fast shape check
	REPRO_BENCH_SCALE=0.4 REPRO_BENCH_QUERIES=6 $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:  # the batched-I/O + direction ablations, CI-sized (ratio bands need full scale)
	REPRO_BENCH_SCALE=0.4 PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/bench_ablation_batchio.py benchmarks/bench_ablation_direction.py \
		benchmarks/bench_ingest_failover.py benchmarks/bench_concurrent_queries.py \
		benchmarks/bench_vertexprog.py benchmarks/bench_ablation_compression.py \
		benchmarks/bench_ablation_semiem.py benchmarks/bench_streaming_ingest.py \
		--benchmark-only

lint:  # requires ruff (pip install ruff)
	$(PYTHON) -m ruff check src/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/semantic_graph_analysis.py
	$(PYTHON) examples/backend_comparison.py
	$(PYTHON) examples/massive_scale_projection.py

figures:  # regenerate every table/figure via the CLI
	for id in table5.1 fig5.1 fig5.2 fig5.3 fig5.4 fig5.5 fig5.6 fig5.7 fig5.8 fig5.9; do \
		$(PYTHON) -m repro experiment $$id; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
